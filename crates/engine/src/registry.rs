//! String-keyed construction of algorithms and adversaries.
//!
//! Binaries, tests, and servers pick algorithms at runtime by name:
//!
//! ```
//! use wb_engine::registry::{self, Params};
//!
//! let params = Params::default().with_n(1 << 12).with_eps(0.125);
//! let mut alg = registry::get("robust_hh", &params).unwrap();
//! assert_eq!(alg.name_dyn(), "RobustL1HeavyHitters");
//! assert!(registry::names().len() >= 8);
//! ```
//!
//! Every entry returns a boxed [`DynStreamAlg`]; unknown keys and
//! out-of-domain parameters return [`WbError::InvalidParameter`].

use crate::erased::{DynAdversary, DynStreamAlg, FnDynAdversary, StreamDynAdversary, Update};
use crate::workload::{FoldSource, WorkloadSpec};
use wb_core::rng::TranscriptRng;
use wb_core::WbError;
use wb_sketch::ams::AmsF2;
use wb_sketch::count_min::CountMin;
use wb_sketch::l0::{ExactL0, MatrixMode, SisL0Estimator};
use wb_sketch::{
    BernMG, BernoulliHeavyHitters, MedianMorris, MisraGries, MorrisCounter, PhiEpsHeavyHitters,
    RobustL1HeavyHitters, SpaceSaving,
};

/// Parameter bag for registry construction. Every algorithm reads the
/// subset it needs; unused fields are ignored. Defaults are sized for
/// test-scale experiments.
#[derive(Debug, Clone)]
pub struct Params {
    /// Universe size `n`.
    pub n: u64,
    /// Accuracy `ε`.
    pub eps: f64,
    /// Failure probability `δ`.
    pub delta: f64,
    /// Reporting threshold `φ` (the `(φ, ε)` heavy-hitter guarantee).
    pub phi: f64,
    /// Stream-length guess for fixed-horizon instances (`bern_mg`,
    /// `bernoulli_hh`).
    pub m_guess: u64,
    /// Stream length for scripted adversaries.
    pub m: u64,
    /// Zipf head size for scripted adversaries.
    pub heavy: u64,
    /// Copies for median amplification (`median_morris`, `ams_f2`).
    pub copies: usize,
    /// CountMin rows.
    pub depth: usize,
    /// CountMin buckets per row.
    pub width: usize,
    /// Adversary time budget `T` (`phi_eps_hh`).
    pub t_budget: u64,
    /// L0 approximation exponent (`n^ε` gap of Theorem 1.5).
    pub l0_eps: f64,
    /// L0 matrix-storage exponent `c`.
    pub l0_c: f64,
    /// Use the random-oracle matrix mode for `sis_l0`.
    pub random_oracle: bool,
    /// Seed for constructor randomness (hash coefficients, matrices, …) —
    /// public, like all randomness in this model.
    pub seed: u64,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            n: 1 << 16,
            eps: 0.125,
            delta: 0.01,
            phi: 0.2,
            m_guess: 1 << 15,
            m: 1 << 14,
            heavy: 8,
            copies: 7,
            depth: 4,
            width: 256,
            t_budget: 1 << 16,
            l0_eps: 0.5,
            l0_c: 0.25,
            random_oracle: true,
            seed: 42,
        }
    }
}

impl Params {
    /// Set the universe size.
    pub fn with_n(mut self, n: u64) -> Self {
        self.n = n;
        self
    }

    /// Set the accuracy parameter.
    pub fn with_eps(mut self, eps: f64) -> Self {
        self.eps = eps;
        self
    }

    /// Set the failure probability.
    pub fn with_delta(mut self, delta: f64) -> Self {
        self.delta = delta;
        self
    }

    /// Set the reporting threshold `φ`.
    pub fn with_phi(mut self, phi: f64) -> Self {
        self.phi = phi;
        self
    }

    /// Set the stream-length guess.
    pub fn with_m_guess(mut self, m_guess: u64) -> Self {
        self.m_guess = m_guess;
        self
    }

    /// Set the scripted-adversary stream length.
    pub fn with_m(mut self, m: u64) -> Self {
        self.m = m;
        self
    }

    /// Set the constructor-randomness seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

type Ctor = fn(&Params) -> Result<Box<dyn DynStreamAlg>, WbError>;

/// `(key, summary, constructor)` for every registered algorithm.
const ENTRIES: &[(&str, &str, Ctor)] = &[
    (
        "misra_gries",
        "deterministic eps-heavy-hitters baseline (Thm 2.2)",
        |p| {
            check_eps(p.eps, 1.0)?;
            Ok(Box::new(MisraGries::new(p.eps, p.n)))
        },
    ),
    (
        "space_saving",
        "SpaceSaving summary with adoption-error tracking (Thm 2.11 substrate)",
        |p| {
            check_eps(p.eps, 1.0)?;
            Ok(Box::new(SpaceSaving::new(p.eps, p.n)))
        },
    ),
    (
        "bern_mg",
        "Algorithm 1: Bernoulli-sampled Misra-Gries for a fixed horizon",
        |p| {
            check_eps(p.eps, 1.0)?;
            check_delta(p.delta)?;
            Ok(Box::new(BernMG::new(p.n, p.m_guess, p.eps, p.delta)))
        },
    ),
    (
        "bernoulli_hh",
        "Theorem 2.3: plain Bernoulli-sampled exact counts for a fixed horizon",
        |p| {
            check_eps(p.eps, 1.0)?;
            check_delta(p.delta)?;
            Ok(Box::new(BernoulliHeavyHitters::new(
                p.n, p.m_guess, p.eps, p.delta,
            )))
        },
    ),
    (
        "robust_hh",
        "Theorem 1.1 / Algorithm 2: robust eps-L1 heavy hitters, unknown horizon",
        |p| {
            check_eps(p.eps, 0.5)?;
            Ok(Box::new(RobustL1HeavyHitters::new(p.n, p.eps)))
        },
    ),
    (
        "phi_eps_hh",
        "Theorem 1.2: CRHF-compressed (phi,eps)-heavy hitters vs T-time adversaries",
        |p| {
            check_eps(p.eps, 0.5)?;
            if !(p.phi > p.eps && p.phi < 1.0) {
                return Err(WbError::invalid("phi must be in (eps, 1)"));
            }
            let mut rng = TranscriptRng::from_seed(p.seed);
            Ok(Box::new(PhiEpsHeavyHitters::new(
                p.n, p.phi, p.eps, p.t_budget, &mut rng,
            )))
        },
    ),
    (
        "morris",
        "Lemma 2.1: a single Morris approximate counter",
        |p| {
            check_eps(p.eps, 1.0)?;
            check_delta(p.delta)?;
            Ok(Box::new(MorrisCounter::new(p.eps, p.delta)))
        },
    ),
    (
        "median_morris",
        "Lemma 2.1: median of `copies` Morris counters",
        |p| {
            check_eps(p.eps, 1.0)?;
            if p.copies == 0 {
                return Err(WbError::invalid("copies must be >= 1"));
            }
            Ok(Box::new(MedianMorris::new(p.eps, p.copies)))
        },
    ),
    (
        "count_min",
        "CountMin sketch (white-box-breakable baseline; query = victim 0 estimate)",
        |p| {
            if p.depth == 0 || p.width < 2 {
                return Err(WbError::invalid("need depth >= 1 and width >= 2"));
            }
            let mut rng = TranscriptRng::from_seed(p.seed);
            Ok(Box::new(CountMin::new(p.depth, p.width, &mut rng)))
        },
    ),
    (
        "ams_f2",
        "AMS F2 sketch (white-box-breakable baseline, Thm 1.9 motivation)",
        |p| {
            if p.copies == 0 {
                return Err(WbError::invalid("copies must be >= 1"));
            }
            let mut rng = TranscriptRng::from_seed(p.seed);
            Ok(Box::new(AmsF2::new(p.copies, &mut rng)))
        },
    ),
    (
        "exact_l0",
        "exact turnstile L0 (space-unbounded reference)",
        |p| Ok(Box::new(ExactL0::new(p.n))),
    ),
    (
        "sis_l0",
        "Theorem 1.5 / Algorithm 5: SIS-based n^eps-approximate turnstile L0",
        |p| {
            if !(p.l0_eps > 0.0 && p.l0_eps < 1.0) {
                return Err(WbError::invalid("l0_eps must be in (0,1)"));
            }
            let mode = if p.random_oracle {
                MatrixMode::RandomOracle
            } else {
                MatrixMode::Explicit
            };
            let mut rng = TranscriptRng::from_seed(p.seed);
            Ok(Box::new(SisL0Estimator::new(
                p.n, p.l0_eps, p.l0_c, mode, &mut rng,
            )))
        },
    ),
];

fn check_eps(eps: f64, hi: f64) -> Result<(), WbError> {
    if eps > 0.0 && eps < hi {
        Ok(())
    } else {
        Err(WbError::invalid(format!("eps must be in (0, {hi})")))
    }
}

fn check_delta(delta: f64) -> Result<(), WbError> {
    if delta > 0.0 && delta < 1.0 {
        Ok(())
    } else {
        Err(WbError::invalid("delta must be in (0, 1)"))
    }
}

/// Keys of every registered algorithm, in registration order.
pub fn names() -> Vec<&'static str> {
    ENTRIES.iter().map(|&(name, _, _)| name).collect()
}

/// `(key, summary)` pairs for every registered algorithm.
pub fn describe() -> Vec<(&'static str, &'static str)> {
    ENTRIES.iter().map(|&(n, d, _)| (n, d)).collect()
}

/// Reject an empty universe at construction time. `Update::fold_into`
/// used to clamp `n = 0` to 1, silently collapsing every item onto 0 (and
/// with it the whole ground truth); an empty universe is a configuration
/// error, not a stream property, so it fails loudly here instead.
fn check_universe(n: u64) -> Result<(), WbError> {
    if n == 0 {
        Err(WbError::invalid(
            "universe size n must be >= 1 (a zero universe has no items to stream)",
        ))
    } else {
        Ok(())
    }
}

/// Construct the algorithm registered under `name`.
pub fn get(name: &str, params: &Params) -> Result<Box<dyn DynStreamAlg>, WbError> {
    check_universe(params.n)?;
    match ENTRIES.iter().find(|&&(n, _, _)| n == name) {
        Some(&(_, _, ctor)) => ctor(params),
        None => Err(WbError::invalid(format!(
            "unknown algorithm '{name}' (known: {})",
            names().join(", ")
        ))),
    }
}

/// Keys of every registered adversary.
pub fn adversary_names() -> Vec<&'static str> {
    vec!["zipf", "ddos", "uniform", "cycle", "hh_evader"]
}

/// Construct the adversary registered under `name`.
///
/// The scripted adversaries (`zipf`, `ddos`, `uniform`, `cycle`) replay
/// the matching [`WorkloadSpec`] stream for `params.m` rounds — pulled
/// lazily from [`WorkloadSpec::stream`], so even a huge scripted phase is
/// O(chunk) memory, never a materialized script; `hh_evader` is adaptive —
/// it interleaves one heavy item with items currently absent from the last
/// reported heavy-hitter list (the classic summary-evasion strategy,
/// expressed over the erased interface).
///
/// `ddos` traffic (raw 32-bit addresses) is folded into the universe by
/// `item % params.n` (the shared [`FoldSource`] rule — the generator logic
/// itself lives only in [`crate::workload`]), so universe-bounded
/// algorithms (`sis_l0` asserts `item < n`) stay playable against every
/// registered adversary; the hot prefix and hot host fold onto fixed
/// residues, preserving the skew.
pub fn adversary(name: &str, params: &Params) -> Result<Box<dyn DynAdversary>, WbError> {
    check_universe(params.n)?;
    let p = params.clone();
    match name {
        "zipf" => Ok(scripted(
            WorkloadSpec::Zipf {
                n: p.n,
                m: p.m,
                heavy: p.heavy,
                seed: p.seed,
            },
            None,
        )),
        "ddos" => Ok(scripted(
            WorkloadSpec::Ddos {
                m: p.m,
                seed: p.seed,
            },
            Some(p.n),
        )),
        "uniform" => Ok(scripted(
            WorkloadSpec::Uniform {
                n: p.n,
                m: p.m,
                seed: p.seed,
            },
            None,
        )),
        "cycle" => Ok(scripted(
            WorkloadSpec::Cycle {
                items: p.heavy.max(1),
                m: p.m,
            },
            None,
        )),
        "hh_evader" => {
            // The evader cycles over the upper half of the universe; a tiny
            // universe would leave it nothing to evade into (or divide by
            // zero), so require enough headroom to always find a fresh item.
            if p.n < 16 {
                return Err(WbError::invalid("hh_evader needs n >= 16"));
            }
            let m = p.m;
            let n = p.n;
            let half = n / 2;
            let mut evader = half;
            Ok(Box::new(FnDynAdversary::new(move |t, _alg, _tr, last| {
                if t > m {
                    return None;
                }
                if t.is_multiple_of(3) {
                    return Some(Update::Insert(1));
                }
                let reported: Vec<u64> = last
                    .and_then(|a| a.as_items().map(|v| v.iter().map(|&(i, _)| i).collect()))
                    .unwrap_or_default();
                // Bounded scan: if (pathologically) every upper-half item is
                // reported, fall back to the current candidate rather than
                // spinning forever.
                for _ in 0..half {
                    if !reported.contains(&evader) {
                        break;
                    }
                    evader = half + (evader + 1) % half;
                }
                let item = evader;
                evader = half + (evader + 1) % half;
                Some(Update::Insert(item))
            })))
        }
        _ => Err(WbError::invalid(format!(
            "unknown adversary '{name}' (known: {})",
            adversary_names().join(", ")
        ))),
    }
}

/// One streaming replay path for every scripted adversary: pull chunks
/// from the spec's lazy stream, optionally folding items into `[0, n)`.
fn scripted(spec: WorkloadSpec, fold_into: Option<u64>) -> Box<dyn DynAdversary> {
    match fold_into {
        Some(n) => Box::new(StreamDynAdversary::new(FoldSource::new(spec.stream(), n))),
        None => Box::new(StreamDynAdversary::new(spec.stream())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::erased::run_erased;
    use crate::referee::RefereeSpec;

    #[test]
    fn at_least_eight_algorithms_constructible() {
        let p = Params::default().with_n(1 << 10);
        let listed = names();
        assert!(listed.len() >= 8, "only {} registry entries", listed.len());
        for name in &listed {
            let alg = get(name, &p).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(!alg.name_dyn().contains("::"), "{name} leaks a path");
        }
        assert_eq!(describe().len(), listed.len());
    }

    #[test]
    fn unknown_keys_and_bad_params_error() {
        assert!(get("no_such_alg", &Params::default()).is_err());
        assert!(get("robust_hh", &Params::default().with_eps(0.9)).is_err());
        assert!(get("misra_gries", &Params::default().with_eps(0.0)).is_err());
        assert!(adversary("no_such_adv", &Params::default()).is_err());
    }

    #[test]
    fn zero_universe_is_a_constructor_error() {
        // Regression: n = 0 used to be silently clamped by fold_into,
        // collapsing every stream onto item 0; it must fail at the door.
        for name in names() {
            let err = get(name, &Params::default().with_n(0));
            assert!(err.is_err(), "{name} accepted n = 0");
        }
        for adv in adversary_names() {
            let err = adversary(adv, &Params::default().with_n(0));
            assert!(err.is_err(), "adversary {adv} accepted n = 0");
        }
    }

    #[test]
    fn construction_is_deterministic_in_seed() {
        let p = Params::default().with_n(1 << 10);
        let mut a = get("count_min", &p).unwrap();
        let mut b = get("count_min", &p).unwrap();
        let mut rng_a = TranscriptRng::from_seed(1);
        let mut rng_b = TranscriptRng::from_seed(1);
        for i in 0..100 {
            a.process_dyn(&Update::Insert(i), &mut rng_a).unwrap();
            b.process_dyn(&Update::Insert(i), &mut rng_b).unwrap();
        }
        assert_eq!(a.query_dyn(), b.query_dyn());
        assert_eq!(a.space_bits_dyn(), b.space_bits_dyn());
    }

    #[test]
    fn scripted_adversaries_replay_the_folded_workload_stream() {
        // The streaming ddos adversary must emit exactly the folded
        // materialized script the old hand-rolled fold produced.
        let p = Params::default().with_n(1 << 10).with_m(500);
        let expected: Vec<Update> = WorkloadSpec::Ddos {
            m: p.m,
            seed: p.seed,
        }
        .generate()
        .into_iter()
        .map(|u| u.fold_into(p.n))
        .collect();
        let mut adv = adversary("ddos", &p).unwrap();
        let alg = get("misra_gries", &p).unwrap();
        let rng = TranscriptRng::from_seed(0);
        let mut got = Vec::new();
        let mut t = 1;
        while let Some(u) = adv.next_update(t, alg.as_ref(), rng.transcript(), None) {
            got.push(u);
            t += 1;
        }
        assert_eq!(got, expected);
        assert!(got.iter().all(|u| u.item() < p.n), "fold missed an item");
    }

    #[test]
    fn named_adversary_plays_named_algorithm() {
        let p = Params::default().with_n(1 << 10).with_m(2_000);
        let mut alg = get("robust_hh", &p).unwrap();
        let mut adv = adversary("hh_evader", &p).unwrap();
        let mut referee = RefereeSpec::HeavyHitters {
            eps: p.eps,
            tol: p.eps,
            phi: None,
            grace: 64,
        }
        .build();
        let report = run_erased(alg.as_mut(), adv.as_mut(), referee.as_mut(), 2_000, 17).unwrap();
        assert!(report.survived(), "failed: {:?}", report.result.failure);
        assert_eq!(report.result.rounds, 2_000);
    }
}
