//! Vertex-neighborhood identification (Theorems 1.3 and 1.4).
//!
//! The task: report all vertices with identical neighborhoods, in the
//! vertex-arrival model.
//!
//! * [`HashedNeighborhoods`] (Theorem 1.3): store only a CRHF digest of
//!   each arriving neighborhood — `O(n log n)` bits. A poly-time white-box
//!   adversary that fools it has found a CRHF collision. Tight by the
//!   `Ω(n log n)` randomized bound (Corollary 2.19).
//! * [`ExactNeighborhoods`] (the Theorem 1.4 side): any *deterministic*
//!   algorithm needs `Ω(n²/log n)` bits — this baseline stores the full
//!   characteristic bitsets (`Θ(n²)` bits) and is used by experiment E5 to
//!   exhibit the separation against the OR-Equality instances of
//!   [`crate::or_equality`].

use crate::stream::VertexArrival;
use std::collections::HashMap;
use wb_core::rng::TranscriptRng;
use wb_core::space::{bits_for_universe, SpaceUsage};
use wb_core::stream::StreamAlg;
use wb_crypto::crhf::PedersenMd;

/// Groups of ≥2 vertices with identical neighborhoods, each group and the
/// list of groups sorted ascending.
pub type NeighborhoodGroups = Vec<Vec<u64>>;

fn groups_from_keys<K: std::hash::Hash + Eq>(per_vertex: &HashMap<u64, K>) -> NeighborhoodGroups {
    let mut by_key: HashMap<&K, Vec<u64>> = HashMap::new();
    for (&v, k) in per_vertex {
        by_key.entry(k).or_default().push(v);
    }
    let mut groups: NeighborhoodGroups = by_key
        .into_values()
        .filter(|g| g.len() >= 2)
        .map(|mut g| {
            g.sort_unstable();
            g
        })
        .collect();
    groups.sort();
    groups
}

/// Theorem 1.3: CRHF-hashed neighborhood identification in `O(n log n)`
/// bits.
#[derive(Debug, Clone)]
pub struct HashedNeighborhoods {
    n: u64,
    crhf: PedersenMd,
    digests: HashMap<u64, u64>,
}

impl HashedNeighborhoods {
    /// New instance over an `n`-vertex graph with a fresh public CRHF.
    pub fn new(n: u64, rng: &mut TranscriptRng) -> Self {
        HashedNeighborhoods {
            n,
            crhf: PedersenMd::generate(40, rng),
            digests: HashMap::new(),
        }
    }

    /// Digest of a canonical neighbor list (the characteristic vector is
    /// hashed via its sorted support plus length).
    fn digest(&self, canonical: &[u64]) -> u64 {
        self.crhf.hash_words(canonical)
    }

    /// Process a vertex arrival.
    pub fn insert(&mut self, arrival: &VertexArrival) {
        let canonical = arrival.canonical_neighbors();
        let d = self.digest(&canonical);
        self.digests.insert(arrival.vertex, d);
    }

    /// All groups of vertices with identical neighborhood digests.
    pub fn identical_groups(&self) -> NeighborhoodGroups {
        groups_from_keys(&self.digests)
    }

    /// The public CRHF (white-box view).
    pub fn crhf(&self) -> &PedersenMd {
        &self.crhf
    }
}

impl SpaceUsage for HashedNeighborhoods {
    /// One digest (`output_bits`) plus one vertex id per seen vertex.
    fn space_bits(&self) -> u64 {
        self.digests.len() as u64 * (self.crhf.output_bits() + bits_for_universe(self.n))
            + self.crhf.space_bits()
    }
}

impl StreamAlg for HashedNeighborhoods {
    type Update = VertexArrival;
    type Output = NeighborhoodGroups;

    fn process(&mut self, update: &VertexArrival, _rng: &mut TranscriptRng) {
        self.insert(update);
    }

    fn query(&self) -> NeighborhoodGroups {
        self.identical_groups()
    }

    fn name(&self) -> &'static str {
        "HashedNeighborhoods"
    }
}

/// Deterministic exact baseline: full characteristic bitsets, `Θ(n²)` bits.
#[derive(Debug, Clone)]
pub struct ExactNeighborhoods {
    n: u64,
    /// Canonical neighbor lists per vertex.
    neighborhoods: HashMap<u64, Vec<u64>>,
}

impl ExactNeighborhoods {
    /// New instance over an `n`-vertex graph.
    pub fn new(n: u64) -> Self {
        ExactNeighborhoods {
            n,
            neighborhoods: HashMap::new(),
        }
    }

    /// Process a vertex arrival.
    pub fn insert(&mut self, arrival: &VertexArrival) {
        self.neighborhoods
            .insert(arrival.vertex, arrival.canonical_neighbors());
    }

    /// All groups of vertices with identical neighborhoods (exact).
    pub fn identical_groups(&self) -> NeighborhoodGroups {
        groups_from_keys(&self.neighborhoods)
    }
}

impl SpaceUsage for ExactNeighborhoods {
    /// The model stores each vertex's characteristic vector: `n` bits per
    /// seen vertex (ids implicit in the bitset representation).
    fn space_bits(&self) -> u64 {
        self.neighborhoods.len() as u64 * self.n
    }
}

impl StreamAlg for ExactNeighborhoods {
    type Update = VertexArrival;
    type Output = NeighborhoodGroups;

    fn process(&mut self, update: &VertexArrival, _rng: &mut TranscriptRng) {
        self.insert(update);
    }

    fn query(&self) -> NeighborhoodGroups {
        self.identical_groups()
    }

    fn name(&self) -> &'static str {
        "ExactNeighborhoods"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arrivals() -> Vec<VertexArrival> {
        vec![
            VertexArrival::new(0, vec![2, 3]),
            VertexArrival::new(1, vec![3, 2]), // same as 0
            VertexArrival::new(2, vec![0, 1]),
            VertexArrival::new(3, vec![0, 1]), // same as 2
            VertexArrival::new(4, vec![0]),    // unique
        ]
    }

    #[test]
    fn exact_finds_identical_pairs() {
        let mut alg = ExactNeighborhoods::new(8);
        for a in arrivals() {
            alg.insert(&a);
        }
        assert_eq!(alg.identical_groups(), vec![vec![0, 1], vec![2, 3]]);
    }

    #[test]
    fn hashed_agrees_with_exact() {
        let mut rng = TranscriptRng::from_seed(400);
        let mut hashed = HashedNeighborhoods::new(8, &mut rng);
        let mut exact = ExactNeighborhoods::new(8);
        for a in arrivals() {
            hashed.insert(&a);
            exact.insert(&a);
        }
        assert_eq!(hashed.identical_groups(), exact.identical_groups());
    }

    #[test]
    fn hashed_agrees_with_exact_on_random_graphs() {
        let mut rng = TranscriptRng::from_seed(401);
        for trial in 0..10u64 {
            let n = 32u64;
            let mut hashed = HashedNeighborhoods::new(n, &mut rng);
            let mut exact = ExactNeighborhoods::new(n);
            for v in 0..n {
                // Draw neighborhoods from a small pool so duplicates occur.
                let pool = rng.below(6);
                let neighbors: Vec<u64> = (0..n)
                    .filter(|&u| (u * 7 + pool).is_multiple_of(5))
                    .collect();
                let a = VertexArrival::new(v, neighbors);
                hashed.insert(&a);
                exact.insert(&a);
            }
            assert_eq!(
                hashed.identical_groups(),
                exact.identical_groups(),
                "trial {trial}"
            );
        }
    }

    #[test]
    fn neighbor_order_and_duplicates_do_not_matter() {
        let mut rng = TranscriptRng::from_seed(402);
        let mut hashed = HashedNeighborhoods::new(8, &mut rng);
        hashed.insert(&VertexArrival::new(0, vec![1, 2, 2, 3]));
        hashed.insert(&VertexArrival::new(5, vec![3, 1, 2]));
        assert_eq!(hashed.identical_groups(), vec![vec![0, 5]]);
    }

    #[test]
    fn empty_neighborhoods_group_together() {
        let mut rng = TranscriptRng::from_seed(403);
        let mut hashed = HashedNeighborhoods::new(8, &mut rng);
        hashed.insert(&VertexArrival::new(0, vec![]));
        hashed.insert(&VertexArrival::new(1, vec![]));
        hashed.insert(&VertexArrival::new(2, vec![0]));
        assert_eq!(hashed.identical_groups(), vec![vec![0, 1]]);
    }

    #[test]
    fn space_separation_hashed_vs_exact() {
        // Theorem 1.3 vs 1.4 at n = 1024: hashed = n·O(log n) bits,
        // exact = n² bits.
        let mut rng = TranscriptRng::from_seed(404);
        let n = 1024u64;
        let mut hashed = HashedNeighborhoods::new(n, &mut rng);
        let mut exact = ExactNeighborhoods::new(n);
        for v in 0..n {
            let a = VertexArrival::new(v, vec![(v + 1) % n, (v + 2) % n]);
            hashed.insert(&a);
            exact.insert(&a);
        }
        assert!(
            hashed.space_bits() * 8 < exact.space_bits(),
            "hashed {} vs exact {}",
            hashed.space_bits(),
            exact.space_bits()
        );
    }
}
