//! The vertex arrival model (§2.4): each stream update is a vertex together
//! with its full neighbor list.

/// One vertex arrival: `vertex` and all vertices incident to it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VertexArrival {
    /// The arriving vertex (`< n`).
    pub vertex: u64,
    /// Its neighbors (order-insensitive; duplicates ignored).
    pub neighbors: Vec<u64>,
}

impl VertexArrival {
    /// Convenience constructor.
    pub fn new(vertex: u64, neighbors: impl Into<Vec<u64>>) -> Self {
        VertexArrival {
            vertex,
            neighbors: neighbors.into(),
        }
    }

    /// The canonical (sorted, deduplicated) neighbor list.
    pub fn canonical_neighbors(&self) -> Vec<u64> {
        let mut v = self.neighbors.clone();
        v.sort_unstable();
        v.dedup();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonicalization() {
        let a = VertexArrival::new(3, vec![5, 1, 5, 2]);
        assert_eq!(a.canonical_neighbors(), vec![1, 2, 5]);
        let b = VertexArrival::new(3, vec![2, 1, 5]);
        assert_eq!(a.canonical_neighbors(), b.canonical_neighbors());
    }

    #[test]
    fn empty_neighborhood() {
        let a = VertexArrival::new(0, vec![]);
        assert!(a.canonical_neighbors().is_empty());
    }
}
