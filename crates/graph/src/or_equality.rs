//! The OR-Equality reduction behind Theorem 1.4.
//!
//! `OrEq_{n,k}` (Definition 2.20): Alice holds `x₁…x_k ∈ {0,1}ⁿ`, Bob holds
//! `y₁…y_k ∈ {0,1}ⁿ`; they must compute all the equality bits `z_i = [x_i =
//! y_i]`. Deterministically this costs `Ω(nk)` (Theorem 2.21, `[KW09]`), even
//! when at most one pair is equal.
//!
//! The reduction (proof of Theorem 1.4): a graph on `2k + n` vertices —
//! `u_i ~ r_j ⟺ x_i[j] = 1` and `v_i ~ r_j ⟺ y_i[j] = 1` — has
//! `N(u_i) = N(v_i)` exactly when `x_i = y_i`. Any deterministic
//! neighborhood-identification algorithm therefore solves `OrEq_{n, n/log n}`,
//! inheriting the `Ω(n²/log n)` space bound. This module generates the hard
//! instances and runs the reduction against both algorithms of
//! [`crate::neighborhood`], so experiment E5 can chart both sides of the
//! separation.

use crate::neighborhood::NeighborhoodGroups;
use crate::stream::VertexArrival;
use wb_core::rng::TranscriptRng;

/// An `OrEq_{n,k}` instance.
#[derive(Debug, Clone)]
pub struct OrEqInstance {
    /// Alice's strings, `k` rows of `n` bits.
    pub xs: Vec<Vec<bool>>,
    /// Bob's strings.
    pub ys: Vec<Vec<bool>>,
}

impl OrEqInstance {
    /// Random instance where exactly the pairs in `equal_pairs` are equal
    /// (Theorem 2.21's hard regime uses at most one).
    pub fn random(n: usize, k: usize, equal_pairs: &[usize], rng: &mut TranscriptRng) -> Self {
        assert!(n >= 1 && k >= 1);
        let mut xs = Vec::with_capacity(k);
        let mut ys = Vec::with_capacity(k);
        for i in 0..k {
            let x: Vec<bool> = (0..n).map(|_| rng.bernoulli(0.5)).collect();
            let y = if equal_pairs.contains(&i) {
                x.clone()
            } else {
                // Resample until different (w.h.p. immediate).
                loop {
                    let cand: Vec<bool> = (0..n).map(|_| rng.bernoulli(0.5)).collect();
                    if cand != x {
                        break cand;
                    }
                }
            };
            xs.push(x);
            ys.push(y);
        }
        OrEqInstance { xs, ys }
    }

    /// Number of string pairs `k`.
    pub fn k(&self) -> usize {
        self.xs.len()
    }

    /// String length `n`.
    pub fn n(&self) -> usize {
        self.xs[0].len()
    }

    /// The ground-truth answer `z ∈ {0,1}^k`.
    pub fn truth(&self) -> Vec<bool> {
        self.xs.iter().zip(&self.ys).map(|(x, y)| x == y).collect()
    }

    /// The reduction graph as a vertex-arrival stream.
    ///
    /// Vertex ids: `u_i = i`, `v_i = k + i`, `r_j = 2k + j`.
    pub fn to_vertex_stream(&self) -> Vec<VertexArrival> {
        let k = self.k() as u64;
        let mut stream = Vec::with_capacity(2 * self.k());
        for (i, x) in self.xs.iter().enumerate() {
            let neighbors: Vec<u64> = x
                .iter()
                .enumerate()
                .filter(|&(_, &b)| b)
                .map(|(j, _)| 2 * k + j as u64)
                .collect();
            stream.push(VertexArrival::new(i as u64, neighbors));
        }
        for (i, y) in self.ys.iter().enumerate() {
            let neighbors: Vec<u64> = y
                .iter()
                .enumerate()
                .filter(|&(_, &b)| b)
                .map(|(j, _)| 2 * k + j as u64)
                .collect();
            stream.push(VertexArrival::new(k + i as u64, neighbors));
        }
        stream
    }

    /// Total number of vertices in the reduction graph.
    pub fn graph_vertices(&self) -> u64 {
        2 * self.k() as u64 + self.n() as u64
    }

    /// Decode the OR-Equality answer from neighborhood groups: `z_i = 1`
    /// iff `u_i` and `v_i` share a group.
    pub fn decode(&self, groups: &NeighborhoodGroups) -> Vec<bool> {
        let k = self.k() as u64;
        (0..self.k())
            .map(|i| {
                let (u, v) = (i as u64, k + i as u64);
                groups.iter().any(|g| g.contains(&u) && g.contains(&v))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::neighborhood::{ExactNeighborhoods, HashedNeighborhoods};

    #[test]
    fn truth_reflects_equal_pairs() {
        let mut rng = TranscriptRng::from_seed(410);
        let inst = OrEqInstance::random(16, 5, &[2], &mut rng);
        let z = inst.truth();
        assert_eq!(z, vec![false, false, true, false, false]);
    }

    #[test]
    fn reduction_solves_or_equality_exactly() {
        let mut rng = TranscriptRng::from_seed(411);
        let inst = OrEqInstance::random(24, 6, &[0, 4], &mut rng);
        let mut exact = ExactNeighborhoods::new(inst.graph_vertices());
        for a in inst.to_vertex_stream() {
            exact.insert(&a);
        }
        let decoded = inst.decode(&exact.identical_groups());
        assert_eq!(decoded, inst.truth());
    }

    #[test]
    fn reduction_solves_or_equality_via_hashing() {
        let mut rng = TranscriptRng::from_seed(412);
        let inst = OrEqInstance::random(32, 8, &[3], &mut rng);
        let mut hashed = HashedNeighborhoods::new(inst.graph_vertices(), &mut rng);
        for a in inst.to_vertex_stream() {
            hashed.insert(&a);
        }
        let decoded = inst.decode(&hashed.identical_groups());
        assert_eq!(decoded, inst.truth());
    }

    #[test]
    fn all_unequal_instance_decodes_to_zeros() {
        let mut rng = TranscriptRng::from_seed(413);
        let inst = OrEqInstance::random(16, 4, &[], &mut rng);
        let mut exact = ExactNeighborhoods::new(inst.graph_vertices());
        for a in inst.to_vertex_stream() {
            exact.insert(&a);
        }
        assert_eq!(inst.decode(&exact.identical_groups()), vec![false; 4]);
    }

    #[test]
    fn graph_structure_is_bipartite_by_construction() {
        let mut rng = TranscriptRng::from_seed(414);
        let inst = OrEqInstance::random(8, 3, &[1], &mut rng);
        let k = inst.k() as u64;
        for a in inst.to_vertex_stream() {
            assert!(a.vertex < 2 * k, "only u/v vertices arrive");
            for &nb in &a.neighbors {
                assert!(nb >= 2 * k, "neighbors are r-vertices only");
            }
        }
    }
}
