//! # wb-graph — graph streams in the white-box model (§2.4)
//!
//! | module | paper anchor | contents |
//! |---|---|---|
//! | [`stream`] | §2.4 | the vertex-arrival model |
//! | [`neighborhood`] | Theorems 1.3 / 1.4 | CRHF-hashed identification (`O(n log n)` bits) and the deterministic `Θ(n²)`-bit baseline |
//! | [`or_equality`] | Definition 2.20 / Theorem 2.21 | OR-Equality instances and the reduction proving Theorem 1.4 |

pub mod neighborhood;
pub mod or_equality;
pub mod stream;

pub use neighborhood::{ExactNeighborhoods, HashedNeighborhoods, NeighborhoodGroups};
pub use or_equality::OrEqInstance;
pub use stream::VertexArrival;
