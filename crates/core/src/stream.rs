//! Stream and update types, the streaming-algorithm trait, and the exact
//! frequency vector used as referee ground truth.

use crate::merge::{MergeError, Mergeable};
use crate::rng::TranscriptRng;
use crate::snap::{SnapError, SnapReader, SnapWriter, Snapshot};
use std::collections::HashMap;

/// An insertion-only update: one occurrence of item `0` (an element of the
/// universe `[n]`, 0-indexed here).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct InsertOnly(pub u64);

/// A turnstile update: `delta` (possibly negative) added to the frequency of
/// `item`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Turnstile {
    /// Universe element, 0-indexed.
    pub item: u64,
    /// Signed change to the item's frequency.
    pub delta: i64,
}

impl Turnstile {
    /// An insertion of one unit.
    pub fn insert(item: u64) -> Self {
        Turnstile { item, delta: 1 }
    }

    /// A deletion of one unit.
    pub fn delete(item: u64) -> Self {
        Turnstile { item, delta: -1 }
    }
}

impl From<InsertOnly> for Turnstile {
    fn from(u: InsertOnly) -> Self {
        Turnstile::insert(u.0)
    }
}

/// Trims a `std::any::type_name` path to the bare type name: the module
/// path and any generic arguments are dropped, so
/// `wb_sketch::robust_hh::RobustL1HeavyHitters` becomes
/// `RobustL1HeavyHitters` and `a::B<c::D>` becomes `B`. Used by the default
/// [`StreamAlg::name`] so experiment tables and registry keys stay readable.
pub fn trim_type_name(full: &str) -> &str {
    let base = full.split('<').next().unwrap_or(full);
    base.rsplit("::").next().unwrap_or(base)
}

/// Calls `f(key, run_length)` for each maximal run of consecutive equal
/// keys produced by `iter` — the shared grouping step of the batched
/// ingestion overrides (feed a sorted sequence to aggregate per key, an
/// unsorted one to collapse bursts while preserving order).
pub fn for_each_run<K, I, F>(iter: I, mut f: F)
where
    K: PartialEq + Copy,
    I: IntoIterator<Item = K>,
    F: FnMut(K, u64),
{
    let mut current: Option<(K, u64)> = None;
    for key in iter {
        match &mut current {
            Some((k, count)) if *k == key => *count += 1,
            _ => {
                if let Some((k, count)) = current.take() {
                    f(k, count);
                }
                current = Some((key, 1));
            }
        }
    }
    if let Some((k, count)) = current {
        f(k, count);
    }
}

/// Reusable open-addressed scratch that aggregates a batch of
/// `(item, weight)` pairs by distinct item — the O(len) replacement for
/// the sort-based grouping in the commutative batched-ingestion kernels
/// (CountMin, AMS), where only per-item totals matter, not order.
///
/// One table is kept alive across batches (stored inside the sketch), so
/// the per-batch cost is a handful of words per update: a multiplicative
/// hash, a short linear probe of a packed `u32` slot array (epoch stamp in
/// the high byte, run index in the low 24 bits — sized so a chunk's table
/// stays L1-resident), and an add. Occupancy is tracked by the epoch stamp
/// instead of clearing slots; the table is sized to ≤ 50% load from the
/// caller-declared batch length. Runs come back in first-occurrence order
/// — deterministic for a given batch; consumers must be order-insensitive
/// (commutative additions), which is exactly the property that makes
/// batching bit-identical in the first place.
///
/// Callers either use the one-shot [`RunAggregator::aggregate`] or the
/// incremental [`RunAggregator::begin`] / [`RunAggregator::add`] /
/// [`RunAggregator::runs`] triple — the latter lets a kernel sample a
/// batch prefix and abandon aggregation when the batch looks
/// high-distinct (aggregation only pays when duplicates abound).
#[derive(Debug, Clone, Default)]
pub struct RunAggregator<W> {
    /// Packed per-slot `(epoch << 24) | run_index`; a slot is live iff its
    /// epoch byte matches the current batch epoch (0 = never used).
    slots: Vec<u32>,
    mask: usize,
    epoch: u32,
    runs: Vec<(u64, W)>,
}

/// Run indices occupy the low 24 bits of a slot.
const RUN_IDX_BITS: u32 = 24;

impl<W: Copy + core::ops::AddAssign> RunAggregator<W> {
    /// An empty aggregator; the slot table is sized lazily per batch.
    pub fn new() -> Self {
        RunAggregator {
            slots: Vec::new(),
            mask: 0,
            epoch: 0,
            runs: Vec::new(),
        }
    }

    /// Starts a new batch of at most `len` pairs: bumps the epoch and
    /// (re)sizes the slot table to keep load ≤ 50%.
    pub fn begin(&mut self, len: usize) {
        assert!(
            len < (1 << RUN_IDX_BITS),
            "RunAggregator batches are capped at 2^24 pairs"
        );
        let want = (len.max(4) * 2).next_power_of_two();
        if self.slots.len() < want {
            self.slots = vec![0; want];
            self.mask = want - 1;
            self.epoch = 0;
        }
        self.epoch += 1;
        if self.epoch == (1 << (32 - RUN_IDX_BITS)) {
            // Epoch byte wrap-around: stale stamps could alias, clear once.
            self.slots.fill(0);
            self.epoch = 1;
        }
        self.runs.clear();
    }

    /// Folds one pair into the current batch's runs.
    #[inline]
    pub fn add(&mut self, item: u64, w: W) {
        // Fibonacci hash to a starting slot, then linear probing; the
        // ≤ 50% load factor keeps probe chains short.
        let mut idx = (item.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize & self.mask;
        let stamp = self.epoch << RUN_IDX_BITS;
        loop {
            let slot = self.slots[idx];
            if slot >> RUN_IDX_BITS != self.epoch {
                debug_assert!(self.runs.len() < (1 << RUN_IDX_BITS));
                self.slots[idx] = stamp | self.runs.len() as u32;
                self.runs.push((item, w));
                return;
            }
            let run = &mut self.runs[(slot & ((1 << RUN_IDX_BITS) - 1)) as usize];
            if run.0 == item {
                run.1 += w;
                return;
            }
            idx = (idx + 1) & self.mask;
        }
    }

    /// The current batch's `(item, total)` runs, in first-occurrence order.
    pub fn runs(&self) -> &[(u64, W)] {
        &self.runs
    }

    /// One-shot [`RunAggregator::begin`] + [`RunAggregator::add`] over
    /// `pairs` (at most `len` of them), returning the aggregated runs.
    pub fn aggregate(&mut self, pairs: impl Iterator<Item = (u64, W)>, len: usize) -> &[(u64, W)] {
        self.begin(len);
        let mut seen = 0usize;
        for (item, w) in pairs {
            seen += 1;
            assert!(seen <= len, "aggregate: more pairs than declared len");
            self.add(item, w);
        }
        &self.runs
    }
}

/// A single-pass streaming algorithm in the white-box model.
///
/// `process` receives the only randomness source the algorithm may use; all
/// draws are publicly transcribed (see [`crate::rng`]). `query` must be
/// answerable at **every** time step — the white-box game checks the answer
/// after every update.
pub trait StreamAlg {
    /// Stream update type (e.g. [`InsertOnly`], [`Turnstile`], or a
    /// domain-specific arrival type).
    type Update;
    /// Query answer type.
    type Output;

    /// Ingest one update, drawing any fresh randomness from `rng`.
    fn process(&mut self, update: &Self::Update, rng: &mut TranscriptRng);

    /// Ingest a batch of updates known in advance (an *oblivious* stream
    /// segment — e.g. a replayed workload, or the prefix before an adaptive
    /// adversary takes over).
    ///
    /// The default forwards to [`StreamAlg::process`] one update at a time.
    /// Implementations may override it with a faster path, but every
    /// override **must** leave the algorithm in a state bit-identical to the
    /// sequential fallback, with an identical randomness transcript — the
    /// workspace property suite checks this for every registry-listed
    /// algorithm.
    fn process_batch(&mut self, updates: &[Self::Update], rng: &mut TranscriptRng) {
        for update in updates {
            self.process(update, rng);
        }
    }

    /// Human-readable name used in experiment tables and registry keys:
    /// the bare type name, without module path or generic arguments.
    fn name(&self) -> &'static str {
        trim_type_name(std::any::type_name::<Self>())
    }

    /// Fold the state of `other` — a sibling instance that ingested a
    /// different slice of the same logical stream — into `self`.
    ///
    /// This is the bridge the erased layer (`DynStreamAlg::merge_dyn` in
    /// `wb-engine`) calls after downcast-checking type equality. The
    /// default declares the algorithm unmergeable; algorithms with a sound
    /// merge implement [`Mergeable`] and override this to delegate:
    ///
    /// ```ignore
    /// fn merge_from(&mut self, other: &Self) -> Result<(), MergeError> {
    ///     Mergeable::merge(self, other)
    /// }
    /// ```
    fn merge_from(&mut self, other: &Self) -> Result<(), MergeError>
    where
        Self: Sized,
    {
        let _ = other;
        Err(MergeError::unmergeable(self.name()))
    }

    /// Serialize the algorithm's full mutable state into `w` (see
    /// [`crate::snap`]). The default declares the algorithm
    /// unsnapshotable — mirroring [`StreamAlg::merge_from`] — and
    /// algorithms implement [`Snapshot`] and override this to delegate:
    ///
    /// ```ignore
    /// fn snapshot_state(&self, w: &mut SnapWriter) -> Result<(), SnapError> {
    ///     Snapshot::snap(self, w);
    ///     Ok(())
    /// }
    /// ```
    fn snapshot_state(&self, w: &mut SnapWriter) -> Result<(), SnapError>
    where
        Self: Sized,
    {
        let _ = w;
        Err(SnapError::unsupported(self.name()))
    }

    /// Overwrite the algorithm's mutable state from `r` — the restore half
    /// of [`StreamAlg::snapshot_state`], applied to an instance constructed
    /// with the same parameters (and ctor seed) as the snapshotted one.
    fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError>
    where
        Self: Sized,
    {
        let _ = r;
        Err(SnapError::unsupported(self.name()))
    }

    /// Answer the fixed query for the stream seen so far.
    fn query(&self) -> Self::Output;
}

/// Exact frequency vector over a `u64` universe, maintained incrementally.
///
/// This is the referee's ground truth: it is deliberately space-unbounded
/// (the referee is the experimenter, not a player in the game). Tracks the
/// L1 norm `‖f‖₁ = Σ|f_k|`, the L0 norm (number of nonzero coordinates) and
/// the total number of updates exactly.
#[derive(Debug, Clone, Default)]
pub struct FrequencyVector {
    freqs: HashMap<u64, i64>,
    l1: u64,
    updates: u64,
    /// Batch scratch (see [`FrequencyVector::update_batch`]); not part of
    /// the observable state, skipped by snapshots.
    agg: RunAggregator<i64>,
}

impl FrequencyVector {
    /// Empty frequency vector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Apply a signed update to `item`.
    pub fn update(&mut self, item: u64, delta: i64) {
        self.updates += 1;
        self.apply(item, delta);
    }

    /// Apply an insertion-only update.
    pub fn insert(&mut self, item: u64) {
        self.update(item, 1);
    }

    /// Apply a batch of signed updates at once.
    ///
    /// Equivalent to calling [`FrequencyVector::update`] per element, but
    /// deltas are pre-aggregated per item through the resident
    /// [`RunAggregator`] scratch (O(len), no allocation or sort once the
    /// scratch is warm) so each touched coordinate is looked up once — the
    /// fast path the engine's batched ingestion uses for referee ground
    /// truth. Coordinate addition commutes, so the final state is
    /// bit-identical to per-element updates.
    pub fn update_batch(&mut self, updates: &[(u64, i64)]) {
        self.updates += updates.len() as u64;
        let mut agg = std::mem::take(&mut self.agg);
        // Segmented to respect the aggregator's 2^24-pair batch cap.
        for part in updates.chunks(1 << 20) {
            agg.begin(part.len());
            for &(item, delta) in part {
                agg.add(item, delta);
            }
            for &(item, delta) in agg.runs() {
                if delta != 0 {
                    self.apply(item, delta);
                }
            }
        }
        self.agg = agg;
    }

    /// Apply a batch of insertions at once (see [`FrequencyVector::update_batch`]).
    pub fn insert_batch(&mut self, items: &[u64]) {
        self.updates += items.len() as u64;
        let mut agg = std::mem::take(&mut self.agg);
        for part in items.chunks(1 << 20) {
            agg.begin(part.len());
            for &item in part {
                agg.add(item, 1i64);
            }
            for &(item, count) in agg.runs() {
                self.apply(item, count);
            }
        }
        self.agg = agg;
    }

    /// Core coordinate update, without touching the stream-length counter.
    fn apply(&mut self, item: u64, delta: i64) {
        let entry = self.freqs.entry(item).or_insert(0);
        let before = entry.unsigned_abs();
        *entry += delta;
        let after = entry.unsigned_abs();
        self.l1 = self.l1 - before + after;
        if *entry == 0 {
            self.freqs.remove(&item);
        }
    }

    /// Exact frequency of `item` (0 if never seen or cancelled out).
    pub fn get(&self, item: u64) -> i64 {
        self.freqs.get(&item).copied().unwrap_or(0)
    }

    /// `‖f‖₁ = Σ_k |f_k|`.
    pub fn l1(&self) -> u64 {
        self.l1
    }

    /// `‖f‖₀ = |{k : f_k ≠ 0}|` — the number of distinct live elements.
    pub fn l0(&self) -> u64 {
        self.freqs.len() as u64
    }

    /// `F_p = Σ_k |f_k|^p` for integer `p ≥ 1` (saturating).
    pub fn fp_moment(&self, p: u32) -> u128 {
        self.freqs
            .values()
            .map(|&v| (v.unsigned_abs() as u128).saturating_pow(p))
            .fold(0u128, u128::saturating_add)
    }

    /// Number of updates applied so far (the stream length `m`).
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// All items with `f_k > threshold`, ascending by item id.
    pub fn items_above(&self, threshold: f64) -> Vec<u64> {
        let mut v: Vec<u64> = self
            .freqs
            .iter()
            .filter(|&(_, &f)| (f as f64) > threshold)
            .map(|(&k, _)| k)
            .collect();
        v.sort_unstable();
        v
    }

    /// Iterate over `(item, frequency)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, i64)> + '_ {
        self.freqs.iter().map(|(&k, &v)| (k, v))
    }
}

impl Snapshot for FrequencyVector {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_map_u64_i64(&self.freqs);
        w.put_u64(self.l1);
        w.put_u64(self.updates);
    }

    fn restore(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let freqs = r.take_map_u64_i64()?;
        let l1 = r.take_u64()?;
        let updates = r.take_u64()?;
        if freqs.values().any(|&f| f == 0) {
            return Err(SnapError::corrupt(
                "frequency vector stores a zero coordinate",
            ));
        }
        let want_l1: u64 = freqs.values().map(|&f| f.unsigned_abs()).sum();
        if want_l1 != l1 {
            return Err(SnapError::corrupt(format!(
                "frequency vector L1 {l1} does not match coordinates ({want_l1})"
            )));
        }
        self.freqs = freqs;
        self.l1 = l1;
        self.updates = updates;
        Ok(())
    }
}

impl Mergeable for FrequencyVector {
    /// Exact merge: coordinates add, so the merged vector equals the one
    /// obtained by ingesting the concatenation of both update streams.
    fn merge(&mut self, other: &Self) -> Result<(), MergeError> {
        for (item, f) in other.iter() {
            self.apply(item, f);
        }
        self.updates += other.updates;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_only_tracks_l1_and_l0() {
        let mut f = FrequencyVector::new();
        for _ in 0..5 {
            f.insert(3);
        }
        f.insert(7);
        assert_eq!(f.get(3), 5);
        assert_eq!(f.get(7), 1);
        assert_eq!(f.get(0), 0);
        assert_eq!(f.l1(), 6);
        assert_eq!(f.l0(), 2);
        assert_eq!(f.updates(), 6);
    }

    #[test]
    fn turnstile_cancellation_updates_l0() {
        let mut f = FrequencyVector::new();
        f.update(1, 4);
        f.update(1, -4);
        assert_eq!(f.l0(), 0);
        assert_eq!(f.l1(), 0);
        assert_eq!(f.get(1), 0);
        f.update(2, -3);
        assert_eq!(f.l1(), 3, "L1 counts |f_k| for negative coordinates");
        assert_eq!(f.l0(), 1);
    }

    #[test]
    fn l1_with_sign_crossing() {
        let mut f = FrequencyVector::new();
        f.update(5, 2);
        assert_eq!(f.l1(), 2);
        f.update(5, -5); // 2 -> -3
        assert_eq!(f.get(5), -3);
        assert_eq!(f.l1(), 3);
    }

    #[test]
    fn fp_moments() {
        let mut f = FrequencyVector::new();
        f.update(1, 3);
        f.update(2, -2);
        // F1 = 5, F2 = 13, F0 via l0 = 2.
        assert_eq!(f.fp_moment(1), 5);
        assert_eq!(f.fp_moment(2), 13);
        assert_eq!(f.l0(), 2);
    }

    #[test]
    fn items_above_sorted() {
        let mut f = FrequencyVector::new();
        for (item, times) in [(9u64, 10), (2, 5), (4, 10), (8, 1)] {
            for _ in 0..times {
                f.insert(item);
            }
        }
        assert_eq!(f.items_above(5.0), vec![4, 9]);
        assert_eq!(f.items_above(0.5), vec![2, 4, 8, 9]);
        assert_eq!(f.items_above(100.0), Vec::<u64>::new());
    }

    #[test]
    fn for_each_run_groups_consecutive_keys() {
        let mut runs = Vec::new();
        for_each_run([3u64, 3, 1, 1, 1, 3, 7], |k, c| runs.push((k, c)));
        assert_eq!(runs, vec![(3, 2), (1, 3), (3, 1), (7, 1)]);
        let mut empty = Vec::new();
        for_each_run(std::iter::empty::<u64>(), |k, c| empty.push((k, c)));
        assert!(empty.is_empty());
    }

    #[test]
    fn update_batch_matches_sequential() {
        let updates: Vec<(u64, i64)> = vec![(1, 3), (2, -2), (1, -3), (9, 5), (2, 2), (9, -1)];
        let mut seq = FrequencyVector::new();
        for &(i, d) in &updates {
            seq.update(i, d);
        }
        let mut batched = FrequencyVector::new();
        batched.update_batch(&updates);
        assert_eq!(seq.l0(), batched.l0());
        assert_eq!(seq.l1(), batched.l1());
        assert_eq!(seq.updates(), batched.updates());
        for item in [1u64, 2, 9, 100] {
            assert_eq!(seq.get(item), batched.get(item));
        }
    }

    #[test]
    fn insert_batch_matches_sequential() {
        let items = [4u64, 4, 7, 4, 9, 7];
        let mut seq = FrequencyVector::new();
        for &i in &items {
            seq.insert(i);
        }
        let mut batched = FrequencyVector::new();
        batched.insert_batch(&items);
        assert_eq!(seq.l1(), batched.l1());
        assert_eq!(seq.updates(), batched.updates());
        assert_eq!(seq.get(4), batched.get(4));
    }

    #[test]
    fn frequency_vector_merge_is_exact() {
        let left: Vec<(u64, i64)> = vec![(1, 3), (2, -2), (9, 5)];
        let right: Vec<(u64, i64)> = vec![(1, -3), (2, 2), (4, 1), (9, -1)];
        let mut merged = FrequencyVector::new();
        for &(i, d) in &left {
            merged.update(i, d);
        }
        let mut other = FrequencyVector::new();
        for &(i, d) in &right {
            other.update(i, d);
        }
        merged.merge(&other).unwrap();
        let mut single = FrequencyVector::new();
        for &(i, d) in left.iter().chain(&right) {
            single.update(i, d);
        }
        assert_eq!(merged.l0(), single.l0());
        assert_eq!(merged.l1(), single.l1());
        assert_eq!(merged.updates(), single.updates());
        for item in [1u64, 2, 4, 9, 77] {
            assert_eq!(merged.get(item), single.get(item));
        }
    }

    #[test]
    fn default_merge_from_is_unmergeable() {
        struct Opaque;
        impl StreamAlg for Opaque {
            type Update = InsertOnly;
            type Output = u64;
            fn process(&mut self, _u: &InsertOnly, _rng: &mut TranscriptRng) {}
            fn query(&self) -> u64 {
                0
            }
        }
        let mut a = Opaque;
        assert_eq!(
            a.merge_from(&Opaque),
            Err(MergeError::unmergeable("Opaque"))
        );
    }

    #[test]
    fn frequency_vector_snapshot_roundtrip() {
        let mut f = FrequencyVector::new();
        for &(i, d) in &[(1u64, 3i64), (2, -2), (9, 5), (1, -3)] {
            f.update(i, d);
        }
        let bytes = crate::snap::to_bytes(&f);
        let mut g = FrequencyVector::new();
        crate::snap::from_bytes(&mut g, &bytes).unwrap();
        assert_eq!(g.l0(), f.l0());
        assert_eq!(g.l1(), f.l1());
        assert_eq!(g.updates(), f.updates());
        for item in [1u64, 2, 9, 77] {
            assert_eq!(g.get(item), f.get(item));
        }
        // Restored vectors keep evolving identically.
        f.update(2, 7);
        g.update(2, 7);
        assert_eq!(g.l1(), f.l1());
    }

    #[test]
    fn default_snapshot_state_is_unsupported() {
        struct Opaque;
        impl StreamAlg for Opaque {
            type Update = InsertOnly;
            type Output = u64;
            fn process(&mut self, _u: &InsertOnly, _rng: &mut TranscriptRng) {}
            fn query(&self) -> u64 {
                0
            }
        }
        let mut w = SnapWriter::new();
        assert_eq!(
            Opaque.snapshot_state(&mut w),
            Err(SnapError::unsupported("Opaque"))
        );
        let bytes = SnapWriter::new().finish();
        let mut r = SnapReader::new(&bytes).unwrap();
        assert_eq!(
            Opaque.restore_state(&mut r),
            Err(SnapError::unsupported("Opaque"))
        );
    }

    #[test]
    fn type_names_are_trimmed() {
        assert_eq!(
            trim_type_name("wb_sketch::robust_hh::RobustL1HeavyHitters"),
            "RobustL1HeavyHitters"
        );
        assert_eq!(trim_type_name("a::b::C<d::e::F>"), "C");
        assert_eq!(trim_type_name("Plain"), "Plain");

        struct Local;
        impl StreamAlg for Local {
            type Update = InsertOnly;
            type Output = u64;
            fn process(&mut self, _u: &InsertOnly, _rng: &mut TranscriptRng) {}
            fn query(&self) -> u64 {
                0
            }
        }
        assert_eq!(Local.name(), "Local");
    }

    #[test]
    fn default_process_batch_is_sequential() {
        struct Summer(u64);
        impl StreamAlg for Summer {
            type Update = InsertOnly;
            type Output = u64;
            fn process(&mut self, u: &InsertOnly, _rng: &mut TranscriptRng) {
                self.0 += u.0;
            }
            fn query(&self) -> u64 {
                self.0
            }
        }
        let mut s = Summer(0);
        let mut rng = TranscriptRng::from_seed(1);
        s.process_batch(&[InsertOnly(2), InsertOnly(5)], &mut rng);
        assert_eq!(s.query(), 7);
    }

    #[test]
    fn turnstile_constructors() {
        assert_eq!(Turnstile::insert(4), Turnstile { item: 4, delta: 1 });
        assert_eq!(Turnstile::delete(4), Turnstile { item: 4, delta: -1 });
        let t: Turnstile = InsertOnly(6).into();
        assert_eq!(t, Turnstile::insert(6));
    }
}
