//! # wb-core — the white-box adversarial data stream model
//!
//! This crate implements the model introduced in *"The White-Box Adversarial
//! Data Stream Model"* (Ajtai, Braverman, Jayram, Silwal, Sun, Woodruff,
//! Zhou; PODS 2022). The model is a two-player game between a streaming
//! algorithm [`StreamAlg`] and a [`WhiteBoxAdversary`]:
//!
//! 1. the adversary computes the next stream update from **all** previous
//!    internal states of the algorithm and **all** randomness it has used;
//! 2. the algorithm ingests the update, drawing fresh random bits;
//! 3. the algorithm answers the fixed query, and the adversary observes the
//!    answer, the new internal state and the new random bits.
//!
//! The adversary wins if the algorithm ever answers incorrectly. Unlike the
//! black-box adversarial model there is **no hidden state whatsoever** — not
//! even a secret key.
//!
//! The crate provides:
//!
//! * [`game`] — the adversary/referee traits and game results (the
//!   positional `run_game` loop is a deprecated shim; games are driven
//!   through the fluent builder in the `wb-engine` crate); the algorithm
//!   value itself is handed to the adversary by shared reference, which is
//!   the strongest possible reading of "observes the entire internal
//!   state";
//! * [`rng`] — deterministic, fully transparent randomness: every word the
//!   algorithm draws is appended to a public transcript
//!   ([`rng::RandTranscript`]) that the adversary can read, and the seed
//!   itself is public;
//! * [`space`] — bit-level space accounting ([`space::SpaceUsage`]): the
//!   paper's theorems count bits of model state, so every algorithm in the
//!   workspace reports an information-theoretically honest encoding size;
//! * [`stream`] — update and stream types (insertion-only, turnstile) and
//!   the exact [`stream::FrequencyVector`] used as ground truth by referees;
//! * [`merge`] — the [`merge::Mergeable`] trait and typed [`MergeError`]s
//!   behind sharded ingestion (`wb_engine::shard`): which summaries can
//!   absorb a sibling instance, and why the rest refuse;
//! * [`snap`] — the versioned, length-prefixed snapshot codec
//!   ([`snap::Snapshot`]) behind checkpoint/resume: white-box state is
//!   public by definition, so persisting it verbatim is model-faithful;
//! * [`referee`] — reusable correctness referees for common query types.
//!
//! # Quick example
//!
//! Implement the two core traits, then drive the game through the engine's
//! fluent builder (`wb_engine::Game`) — or skip the types entirely and
//! pick a workspace algorithm by name from `wb_engine::registry`:
//!
//! ```
//! use wb_core::game::{ScriptAdversary, FnReferee, Verdict};
//! use wb_core::rng::TranscriptRng;
//! use wb_core::space::SpaceUsage;
//! use wb_core::stream::{InsertOnly, StreamAlg};
//! use wb_engine::Game;
//!
//! /// A trivial exact counter: deterministic, hence white-box robust.
//! struct ExactCounter(u64);
//! impl StreamAlg for ExactCounter {
//!     type Update = InsertOnly;
//!     type Output = u64;
//!     fn process(&mut self, _u: &InsertOnly, _rng: &mut TranscriptRng) { self.0 += 1; }
//!     fn query(&self) -> u64 { self.0 }
//! }
//! impl SpaceUsage for ExactCounter {
//!     fn space_bits(&self) -> u64 { wb_core::space::bits_for_count(self.0) }
//! }
//!
//! let report = Game::new(ExactCounter(0))
//!     .adversary(ScriptAdversary::new((0..100).map(InsertOnly).collect::<Vec<_>>()))
//!     .referee(FnReferee::new(|t: u64, out: &u64| {
//!         if *out == t { Verdict::Correct } else { Verdict::violation("count mismatch") }
//!     }))
//!     .max_rounds(100)
//!     .seed(7)
//!     .run();
//! assert!(report.survived());
//!
//! // Runtime selection: the same game over the erased registry interface.
//! use wb_engine::registry::{self, Params};
//! let mut named = registry::get("misra_gries", &Params::default()).unwrap();
//! assert_eq!(named.name_dyn(), "MisraGries");
//! ```
//!
//! ## Migrating from `run_game`
//!
//! The positional `run_game(alg, adv, referee, max_rounds, seed)` shim maps
//! onto the builder one argument at a time:
//!
//! ```text
//! run_game(&mut alg, &mut adv, &mut ref_, m, s)
//!   ⇒ Game::new(alg).adversary(adv).referee(ref_).max_rounds(m).seed(s).run()
//! ```
//!
//! The builder returns a `GameReport` whose `.result` field is the old
//! [`GameResult`]; use `.play()` instead of `.run()` to get the final
//! algorithm state back alongside the report.

pub mod error;
pub mod game;
pub mod merge;
pub mod referee;
pub mod rng;
pub mod snap;
pub mod space;
pub mod stream;

pub use error::WbError;
#[allow(deprecated)] // re-exported for the migration window; see wb-engine
pub use game::run_game;
pub use game::{GameResult, Referee, Verdict, WhiteBoxAdversary};
pub use merge::{MergeError, Mergeable};
pub use rng::{RandTranscript, TranscriptRng};
pub use snap::{SnapError, SnapReader, SnapWriter, Snapshot};
pub use space::SpaceUsage;
pub use stream::{FrequencyVector, InsertOnly, StreamAlg, Turnstile};
