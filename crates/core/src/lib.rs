//! # wb-core — the white-box adversarial data stream model
//!
//! This crate implements the model introduced in *"The White-Box Adversarial
//! Data Stream Model"* (Ajtai, Braverman, Jayram, Silwal, Sun, Woodruff,
//! Zhou; PODS 2022). The model is a two-player game between a streaming
//! algorithm [`StreamAlg`] and a [`WhiteBoxAdversary`]:
//!
//! 1. the adversary computes the next stream update from **all** previous
//!    internal states of the algorithm and **all** randomness it has used;
//! 2. the algorithm ingests the update, drawing fresh random bits;
//! 3. the algorithm answers the fixed query, and the adversary observes the
//!    answer, the new internal state and the new random bits.
//!
//! The adversary wins if the algorithm ever answers incorrectly. Unlike the
//! black-box adversarial model there is **no hidden state whatsoever** — not
//! even a secret key.
//!
//! The crate provides:
//!
//! * [`game`] — the game loop ([`game::run_game`]), adversary/referee traits
//!   and game results; the algorithm value itself is handed to the adversary
//!   by shared reference, which is the strongest possible reading of
//!   "observes the entire internal state";
//! * [`rng`] — deterministic, fully transparent randomness: every word the
//!   algorithm draws is appended to a public transcript
//!   ([`rng::RandTranscript`]) that the adversary can read, and the seed
//!   itself is public;
//! * [`space`] — bit-level space accounting ([`space::SpaceUsage`]): the
//!   paper's theorems count bits of model state, so every algorithm in the
//!   workspace reports an information-theoretically honest encoding size;
//! * [`stream`] — update and stream types (insertion-only, turnstile) and
//!   the exact [`stream::FrequencyVector`] used as ground truth by referees;
//! * [`referee`] — reusable correctness referees for common query types.
//!
//! # Quick example
//!
//! ```
//! use wb_core::game::{run_game, ScriptAdversary, FnReferee, Verdict};
//! use wb_core::rng::TranscriptRng;
//! use wb_core::space::SpaceUsage;
//! use wb_core::stream::{InsertOnly, StreamAlg};
//!
//! /// A trivial exact counter: deterministic, hence white-box robust.
//! struct ExactCounter(u64);
//! impl StreamAlg for ExactCounter {
//!     type Update = InsertOnly;
//!     type Output = u64;
//!     fn process(&mut self, _u: &InsertOnly, _rng: &mut TranscriptRng) { self.0 += 1; }
//!     fn query(&self) -> u64 { self.0 }
//! }
//! impl SpaceUsage for ExactCounter {
//!     fn space_bits(&self) -> u64 { wb_core::space::bits_for_count(self.0) }
//! }
//!
//! let mut alg = ExactCounter(0);
//! let mut adv = ScriptAdversary::new((0..100).map(InsertOnly).collect::<Vec<_>>());
//! let mut referee = FnReferee::new(|t: u64, out: &u64| {
//!     if *out == t { Verdict::Correct } else { Verdict::violation("count mismatch") }
//! });
//! let result = run_game(&mut alg, &mut adv, &mut referee, 100, 7);
//! assert!(result.survived());
//! ```

pub mod error;
pub mod game;
pub mod referee;
pub mod rng;
pub mod space;
pub mod stream;

pub use error::WbError;
pub use game::{run_game, GameResult, Referee, Verdict, WhiteBoxAdversary};
pub use rng::{RandTranscript, TranscriptRng};
pub use space::SpaceUsage;
pub use stream::{FrequencyVector, InsertOnly, StreamAlg, Turnstile};
