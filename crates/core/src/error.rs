//! Error type shared across the workspace.

use std::fmt;

/// Errors raised by white-box streaming algorithms and harnesses.
///
/// The streaming algorithms themselves are written to be infallible on
/// well-formed updates (a streaming algorithm cannot "retry" a stream), so
/// errors surface only at construction time (bad parameters) or in offline
/// tooling (attacks, solvers, verifiers).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WbError {
    /// A constructor was given a parameter outside its documented domain.
    InvalidParameter(String),
    /// An offline search (attack, enumeration, verification) exhausted its
    /// budget without reaching a conclusion.
    BudgetExhausted(String),
    /// An internal invariant that should be unreachable was violated.
    Internal(String),
}

impl WbError {
    /// Convenience constructor for [`WbError::InvalidParameter`].
    pub fn invalid(msg: impl Into<String>) -> Self {
        WbError::InvalidParameter(msg.into())
    }
}

impl fmt::Display for WbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WbError::InvalidParameter(m) => write!(f, "invalid parameter: {m}"),
            WbError::BudgetExhausted(m) => write!(f, "budget exhausted: {m}"),
            WbError::Internal(m) => write!(f, "internal invariant violated: {m}"),
        }
    }
}

impl std::error::Error for WbError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(
            WbError::invalid("eps must be in (0,1)").to_string(),
            "invalid parameter: eps must be in (0,1)"
        );
        assert_eq!(
            WbError::BudgetExhausted("2^20 candidates".into()).to_string(),
            "budget exhausted: 2^20 candidates"
        );
        assert_eq!(
            WbError::Internal("negative count".into()).to_string(),
            "internal invariant violated: negative count"
        );
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn std::error::Error> = Box::new(WbError::invalid("x"));
        assert!(e.to_string().contains("invalid"));
    }
}
