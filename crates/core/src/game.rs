//! The white-box adversarial game (§1 of the paper).
//!
//! A game instance is a loop over rounds `t = 1, 2, …, m`:
//!
//! 1. the [`WhiteBoxAdversary`] computes update `u_t` from the algorithm's
//!    entire current state (it receives `&A` — every field of the algorithm
//!    struct), the full randomness transcript, and the last answer;
//! 2. the [`StreamAlg`] processes `u_t`, drawing fresh public randomness;
//! 3. the algorithm answers the fixed query; a [`Referee`] holding exact
//!    ground truth checks it. The adversary wins if any answer is wrong.
//!
//! [`run_game`] drives the loop and reports the first violation (if any),
//! the number of rounds survived, and the peak space used.

use crate::rng::{RandTranscript, TranscriptRng};
use crate::space::SpaceUsage;
use crate::stream::StreamAlg;

/// The referee's judgement of one answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// The answer satisfies the query's correctness guarantee.
    Correct,
    /// The answer violates the guarantee; the description is recorded in the
    /// game result.
    Violation(String),
}

impl Verdict {
    /// Shorthand for a violation with a message.
    pub fn violation(msg: impl Into<String>) -> Self {
        Verdict::Violation(msg.into())
    }

    /// `true` iff the verdict is [`Verdict::Correct`].
    pub fn is_correct(&self) -> bool {
        matches!(self, Verdict::Correct)
    }
}

/// An adversary in the white-box model: it sees the whole algorithm.
pub trait WhiteBoxAdversary<A: StreamAlg> {
    /// Produce the update for round `t` (1-indexed), or `None` to end the
    /// stream. `alg` is the algorithm *after* round `t-1`; `transcript` is
    /// the complete public record of its randomness; `last_output` is the
    /// answer after round `t-1` (`None` at `t = 1`).
    fn next_update(
        &mut self,
        t: u64,
        alg: &A,
        transcript: &RandTranscript,
        last_output: Option<&A::Output>,
    ) -> Option<A::Update>;
}

/// Ground-truth correctness checker for a query.
///
/// The referee is the *experimenter*, not a player: it may use unbounded
/// space (e.g. an exact frequency vector) to decide whether each streamed
/// answer meets the guarantee claimed by the theorem under test.
pub trait Referee<A: StreamAlg> {
    /// Observe the update that is about to be processed.
    fn observe(&mut self, update: &A::Update);
    /// Judge the algorithm's answer after round `t`.
    fn check(&mut self, t: u64, output: &A::Output) -> Verdict;
}

/// A recorded violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Failure {
    /// Round (1-indexed) at which the first wrong answer appeared.
    pub round: u64,
    /// Referee's description of the violation.
    pub description: String,
}

/// Outcome of one white-box game.
#[derive(Debug, Clone)]
pub struct GameResult {
    /// Rounds actually played (the adversary may stop early).
    pub rounds: u64,
    /// First violation, if the adversary won.
    pub failure: Option<Failure>,
    /// Largest `space_bits()` observed across the game.
    pub peak_space_bits: u64,
    /// `space_bits()` after the final round.
    pub final_space_bits: u64,
}

impl GameResult {
    /// `true` iff the algorithm was correct at every round.
    pub fn survived(&self) -> bool {
        self.failure.is_none()
    }
}

/// Runs the white-box game for at most `max_rounds` rounds.
///
/// `seed` is the algorithm's **public** random seed; the adversary can
/// replay the entire tape from it (see [`RandTranscript::replay`]).
/// The game stops at the first violation (the adversary has already won),
/// when the adversary returns `None`, or after `max_rounds`.
///
/// Deprecated: this five-positional-argument entry point is kept as a thin
/// compatibility shim. New code should drive games through the fluent
/// builder in the `wb-engine` crate
/// (`wb_engine::Game::new(alg).adversary(adv).referee(r).max_rounds(m).seed(s).run()`),
/// which adds observers, structured reports and batched ingestion.
#[deprecated(
    since = "0.2.0",
    note = "drive games through wb_engine::Game (fluent builder); this shim will be removed"
)]
pub fn run_game<A, Adv, R>(
    alg: &mut A,
    adversary: &mut Adv,
    referee: &mut R,
    max_rounds: u64,
    seed: u64,
) -> GameResult
where
    A: StreamAlg + SpaceUsage,
    Adv: WhiteBoxAdversary<A>,
    R: Referee<A>,
{
    let mut rng = TranscriptRng::from_seed(seed);
    let mut last_output: Option<A::Output> = None;
    let mut peak = alg.space_bits();
    let mut rounds = 0;
    let mut failure = None;

    for t in 1..=max_rounds {
        let update = match adversary.next_update(t, alg, rng.transcript(), last_output.as_ref()) {
            Some(u) => u,
            None => break,
        };
        referee.observe(&update);
        alg.process(&update, &mut rng);
        rounds = t;
        peak = peak.max(alg.space_bits());
        let output = alg.query();
        if let Verdict::Violation(description) = referee.check(t, &output) {
            failure = Some(Failure {
                round: t,
                description,
            });
            break;
        }
        last_output = Some(output);
    }

    GameResult {
        rounds,
        failure,
        peak_space_bits: peak,
        final_space_bits: alg.space_bits(),
    }
}

/// An adversary that plays a fixed script of updates (an *oblivious* stream
/// expressed in the white-box interface). Useful as a baseline and for
/// driving deterministic workloads through the game harness.
#[derive(Debug, Clone)]
pub struct ScriptAdversary<U> {
    script: Vec<U>,
    pos: usize,
}

impl<U> ScriptAdversary<U> {
    /// Adversary that replays `script` in order, then stops.
    pub fn new(script: Vec<U>) -> Self {
        ScriptAdversary { script, pos: 0 }
    }
}

impl<A> WhiteBoxAdversary<A> for ScriptAdversary<A::Update>
where
    A: StreamAlg,
    A::Update: Clone,
{
    fn next_update(
        &mut self,
        _t: u64,
        _alg: &A,
        _transcript: &RandTranscript,
        _last_output: Option<&A::Output>,
    ) -> Option<A::Update> {
        let u = self.script.get(self.pos)?.clone();
        self.pos += 1;
        Some(u)
    }
}

/// An adversary defined by a closure over the full white-box view.
pub struct FnAdversary<F> {
    f: F,
}

impl<F> FnAdversary<F> {
    /// Wrap `f` as an adversary.
    pub fn new(f: F) -> Self {
        FnAdversary { f }
    }
}

impl<A, F> WhiteBoxAdversary<A> for FnAdversary<F>
where
    A: StreamAlg,
    F: FnMut(u64, &A, &RandTranscript, Option<&A::Output>) -> Option<A::Update>,
{
    fn next_update(
        &mut self,
        t: u64,
        alg: &A,
        transcript: &RandTranscript,
        last_output: Option<&A::Output>,
    ) -> Option<A::Update> {
        (self.f)(t, alg, transcript, last_output)
    }
}

/// Adapter for a **black-box** adversary: the wrapped closure sees only
/// the round index and the previous output — the interface of the
/// black-box adversarial streaming model the paper contrasts with. The
/// type system enforces the restriction (the closure is never given `&A`
/// or the transcript), so experiments can run the *same* algorithm under
/// both adversary classes and compare outcomes.
pub struct BlackBoxAdversary<F> {
    f: F,
}

impl<F> BlackBoxAdversary<F> {
    /// Wrap `f` as an output-only adversary.
    pub fn new(f: F) -> Self {
        BlackBoxAdversary { f }
    }
}

impl<A, F> WhiteBoxAdversary<A> for BlackBoxAdversary<F>
where
    A: StreamAlg,
    F: FnMut(u64, Option<&A::Output>) -> Option<A::Update>,
{
    fn next_update(
        &mut self,
        t: u64,
        _alg: &A,
        _transcript: &RandTranscript,
        last_output: Option<&A::Output>,
    ) -> Option<A::Update> {
        (self.f)(t, last_output)
    }
}

/// A referee defined by a closure on `(round, output)`, for queries whose
/// correctness is a pure function of the round index (e.g. exact counting).
pub struct FnReferee<F> {
    f: F,
}

impl<F> FnReferee<F> {
    /// Wrap `f` as a referee.
    pub fn new(f: F) -> Self {
        FnReferee { f }
    }
}

impl<A, F> Referee<A> for FnReferee<F>
where
    A: StreamAlg,
    F: FnMut(u64, &A::Output) -> Verdict,
{
    fn observe(&mut self, _update: &A::Update) {}

    fn check(&mut self, t: u64, output: &A::Output) -> Verdict {
        (self.f)(t, output)
    }
}

#[cfg(test)]
#[allow(deprecated)] // the shim's own unit tests keep exercising it
mod tests {
    use super::*;
    use crate::space::bits_for_count;
    use crate::stream::InsertOnly;

    /// Exact counter: deterministic and always correct.
    struct ExactCounter(u64);
    impl StreamAlg for ExactCounter {
        type Update = InsertOnly;
        type Output = u64;
        fn process(&mut self, _u: &InsertOnly, _rng: &mut TranscriptRng) {
            self.0 += 1;
        }
        fn query(&self) -> u64 {
            self.0
        }
    }
    impl SpaceUsage for ExactCounter {
        fn space_bits(&self) -> u64 {
            bits_for_count(self.0)
        }
    }

    /// A "leaky" randomized counter that adds a random word to its state and
    /// is wrong as soon as the adversary predicts that word — a toy showing
    /// the white-box view in action.
    struct LeakyCounter {
        count: u64,
        pad: u64,
    }
    impl StreamAlg for LeakyCounter {
        type Update = InsertOnly;
        type Output = u64;
        fn process(&mut self, u: &InsertOnly, rng: &mut TranscriptRng) {
            // The counter wrongly trusts the update value whenever the item
            // equals its current pad (an adversary-reachable trap state);
            // the pad is then redrawn, so only a state-observing adversary
            // can hit the trap reliably.
            if u.0 == self.pad % 1000 {
                self.count += 2;
            } else {
                self.count += 1;
            }
            self.pad = rng.next_u64();
        }
        fn query(&self) -> u64 {
            self.count
        }
    }
    impl SpaceUsage for LeakyCounter {
        fn space_bits(&self) -> u64 {
            bits_for_count(self.count) + 64
        }
    }

    #[test]
    fn exact_counter_survives_any_script() {
        let mut alg = ExactCounter(0);
        let mut adv = ScriptAdversary::new((0..500).map(InsertOnly).collect::<Vec<_>>());
        let mut referee = FnReferee::new(|t: u64, out: &u64| {
            if *out == t {
                Verdict::Correct
            } else {
                Verdict::violation(format!("expected {t}, got {out}"))
            }
        });
        let result = run_game(&mut alg, &mut adv, &mut referee, 1_000, 1);
        assert!(result.survived());
        assert_eq!(result.rounds, 500);
        assert!(result.peak_space_bits >= bits_for_count(500));
    }

    #[test]
    fn white_box_adversary_beats_leaky_counter() {
        // The adversary reads the pad from the algorithm's state (white-box!)
        // and sends exactly the item that triggers the double count.
        let mut alg = LeakyCounter { count: 0, pad: 0 };
        let mut adv = FnAdversary::new(
            |_t: u64, alg: &LeakyCounter, _tr: &RandTranscript, _last: Option<&u64>| {
                Some(InsertOnly(alg.pad % 1000))
            },
        );
        let mut referee = FnReferee::new(|t: u64, out: &u64| {
            if *out == t {
                Verdict::Correct
            } else {
                Verdict::violation(format!("expected {t}, got {out}"))
            }
        });
        let result = run_game(&mut alg, &mut adv, &mut referee, 1_000, 2);
        assert!(
            !result.survived(),
            "adversary should exploit the state leak"
        );
        // First adaptive exploitation is possible from round 2 onward (pad is
        // drawn during round 1).
        let failure = result.failure.unwrap();
        assert!(
            failure.round <= 10,
            "exploit should land almost immediately"
        );
    }

    #[test]
    fn blind_adversary_rarely_beats_leaky_counter_quickly() {
        // The same trap state exists, but a script adversary cannot see the
        // pad; hitting `pad % 1000` blindly is a 1/1000-per-round event.
        let mut alg = LeakyCounter { count: 0, pad: 0 };
        let mut adv = ScriptAdversary::new(vec![InsertOnly(1); 20]);
        let mut referee = FnReferee::new(|t: u64, out: &u64| {
            if *out == t {
                Verdict::Correct
            } else {
                Verdict::violation("miscount")
            }
        });
        let result = run_game(&mut alg, &mut adv, &mut referee, 20, 3);
        // With this fixed seed, 20 blind rounds never hit the trap.
        assert!(result.survived());
    }

    #[test]
    fn adversary_can_stop_early() {
        let mut alg = ExactCounter(0);
        let mut adv = ScriptAdversary::new(vec![InsertOnly(0); 3]);
        let mut referee = FnReferee::new(|_t, _out: &u64| Verdict::Correct);
        let result = run_game(&mut alg, &mut adv, &mut referee, 100, 4);
        assert_eq!(result.rounds, 3);
        assert!(result.survived());
    }

    #[test]
    fn game_stops_at_first_violation() {
        let mut alg = ExactCounter(0);
        let mut adv = ScriptAdversary::new(vec![InsertOnly(0); 100]);
        // Referee that (incorrectly for the test's purposes) demands the
        // count never exceed 5 — forces a violation at round 6.
        let mut referee = FnReferee::new(|_t, out: &u64| {
            if *out <= 5 {
                Verdict::Correct
            } else {
                Verdict::violation("count exceeded 5")
            }
        });
        let result = run_game(&mut alg, &mut adv, &mut referee, 100, 5);
        assert_eq!(result.rounds, 6);
        assert_eq!(result.failure.as_ref().unwrap().round, 6);
    }

    #[test]
    fn verdict_helpers() {
        assert!(Verdict::Correct.is_correct());
        assert!(!Verdict::violation("x").is_correct());
    }
}
