//! Bit-level space accounting.
//!
//! The paper's results are statements about **bits of model state**: e.g.
//! Misra-Gries uses `O(ε⁻¹ (log m + log n))` bits (Theorem 2.2) while the
//! robust heavy-hitters algorithm uses
//! `O(ε⁻¹ (log n + log ε⁻¹) + log log m)` bits (Theorem 1.1). Comparing Rust
//! allocation sizes would bury those slopes under allocator and
//! pointer-width constants, so every algorithm in this workspace implements
//! [`SpaceUsage`] and reports the number of bits an information-
//! theoretically honest encoding of its *current* state requires: counter
//! values contribute their bit length, stored identifiers contribute
//! `⌈log₂ n⌉` bits each, hash outputs contribute their output width, and so
//! on. Experiment harnesses sweep stream parameters and read `space_bits()`
//! to reproduce the paper's separations.

/// Types whose model-state size in bits can be reported.
pub trait SpaceUsage {
    /// Number of bits needed to encode the current state of this structure
    /// in the streaming model's accounting (not Rust memory).
    fn space_bits(&self) -> u64;
}

/// Bits needed to store the nonnegative integer `x` in binary
/// (at least 1 bit; `bits_for_count(0) == 1`).
pub fn bits_for_count(x: u64) -> u64 {
    (64 - x.leading_zeros()).max(1) as u64
}

/// Bits needed to index a universe of size `n`, i.e. `⌈log₂ n⌉`
/// (at least 1 bit; `bits_for_universe(0) == 1` by convention).
pub fn bits_for_universe(n: u64) -> u64 {
    if n <= 1 {
        1
    } else {
        (64 - (n - 1).leading_zeros()) as u64
    }
}

/// Bits needed to store a signed counter with magnitude `|x|`
/// (sign bit + magnitude).
pub fn bits_for_signed(x: i64) -> u64 {
    bits_for_count(x.unsigned_abs()) + 1
}

impl<T: SpaceUsage> SpaceUsage for Vec<T> {
    fn space_bits(&self) -> u64 {
        self.iter().map(SpaceUsage::space_bits).sum()
    }
}

impl<T: SpaceUsage> SpaceUsage for Option<T> {
    fn space_bits(&self) -> u64 {
        // One presence bit plus the payload if present.
        1 + self.as_ref().map_or(0, SpaceUsage::space_bits)
    }
}

impl<A: SpaceUsage, B: SpaceUsage> SpaceUsage for (A, B) {
    fn space_bits(&self) -> u64 {
        self.0.space_bits() + self.1.space_bits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts() {
        assert_eq!(bits_for_count(0), 1);
        assert_eq!(bits_for_count(1), 1);
        assert_eq!(bits_for_count(2), 2);
        assert_eq!(bits_for_count(3), 2);
        assert_eq!(bits_for_count(4), 3);
        assert_eq!(bits_for_count(255), 8);
        assert_eq!(bits_for_count(256), 9);
        assert_eq!(bits_for_count(u64::MAX), 64);
    }

    #[test]
    fn universes() {
        assert_eq!(bits_for_universe(0), 1);
        assert_eq!(bits_for_universe(1), 1);
        assert_eq!(bits_for_universe(2), 1);
        assert_eq!(bits_for_universe(3), 2);
        assert_eq!(bits_for_universe(4), 2);
        assert_eq!(bits_for_universe(5), 3);
        assert_eq!(bits_for_universe(1 << 20), 20);
        assert_eq!(bits_for_universe((1 << 20) + 1), 21);
    }

    #[test]
    fn signed() {
        assert_eq!(bits_for_signed(0), 2);
        assert_eq!(bits_for_signed(-1), 2);
        assert_eq!(bits_for_signed(1), 2);
        assert_eq!(bits_for_signed(-256), 10);
        assert_eq!(bits_for_signed(i64::MIN), 65);
    }

    struct Fixed(u64);
    impl SpaceUsage for Fixed {
        fn space_bits(&self) -> u64 {
            self.0
        }
    }

    #[test]
    fn container_impls_sum() {
        let v = vec![Fixed(3), Fixed(5)];
        assert_eq!(v.space_bits(), 8);
        let some: Option<Fixed> = Some(Fixed(7));
        assert_eq!(some.space_bits(), 8);
        let none: Option<Fixed> = None;
        assert_eq!(none.space_bits(), 1);
        assert_eq!((Fixed(1), Fixed(2)).space_bits(), 3);
    }

    #[test]
    fn log_growth_is_monotone() {
        // The accounting must be monotone in the stored value — experiments
        // depend on this to chart space-vs-stream-length curves.
        let mut prev = 0;
        for e in 0..63 {
            let b = bits_for_count(1u64 << e);
            assert!(b >= prev);
            prev = b;
        }
    }
}
