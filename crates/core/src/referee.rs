//! Reusable referees for the query families studied in the paper.
//!
//! Each referee maintains exact ground truth (it is the experimenter) and
//! checks the guarantee the corresponding theorem claims:
//!
//! * [`HeavyHitterReferee`] — the `ε`-L1-heavy-hitters guarantee of
//!   Theorems 1.1/2.2 (all heavy items reported, estimates within additive
//!   `ε·‖f‖₁`), with an optional `(φ, ε)` false-positive bound (Thm 1.2);
//! * [`ApproxCountReferee`] — `(1+ε)`-approximate counting (Lemma 2.1);
//! * [`L0SandwichReferee`] — the `n^ε`-multiplicative L0 guarantee of
//!   Theorem 1.5 (`answer ≤ L0 ≤ answer · factor`).

use crate::game::{Referee, Verdict};
use crate::snap::{SnapError, SnapReader, SnapWriter, Snapshot};
use crate::stream::{FrequencyVector, InsertOnly, StreamAlg, Turnstile};

/// Answer type for heavy-hitter queries: `(item, estimated frequency)`.
pub type HhAnswer = Vec<(u64, f64)>;

/// Referee for the `ε`-L1-heavy-hitters problem (and its `(φ,ε)` variant).
#[derive(Debug, Clone)]
pub struct HeavyHitterReferee {
    truth: FrequencyVector,
    /// Report threshold: all items with `f_i > eps·‖f‖₁` must be in the list.
    eps: f64,
    /// Additive estimation error allowed, as a fraction of `‖f‖₁`.
    estimate_tol: f64,
    /// If set to `φ`, no reported item may have `f_i < (φ − eps)·‖f‖₁`
    /// (the `(φ, ε)` false-positive guarantee of Theorem 1.2).
    phi: Option<f64>,
    /// Warm-up rounds during which the check is skipped (sampling-based
    /// algorithms have vacuous guarantees on the first few updates).
    grace: u64,
}

impl HeavyHitterReferee {
    /// Referee for the plain `ε`-heavy-hitters guarantee with additive
    /// estimate tolerance `estimate_tol·‖f‖₁`.
    pub fn new(eps: f64, estimate_tol: f64) -> Self {
        HeavyHitterReferee {
            truth: FrequencyVector::new(),
            eps,
            estimate_tol,
            phi: None,
            grace: 0,
        }
    }

    /// Additionally enforce the `(φ, ε)` false-positive bound.
    pub fn with_phi(mut self, phi: f64) -> Self {
        self.phi = Some(phi);
        self
    }

    /// Skip checks for the first `rounds` updates.
    pub fn with_grace(mut self, rounds: u64) -> Self {
        self.grace = rounds;
        self
    }

    /// Exact ground truth (for experiment reporting).
    pub fn truth(&self) -> &FrequencyVector {
        &self.truth
    }

    /// Observe one inserted item without going through the typed
    /// [`Referee`] impl — the entry point for erased harnesses.
    pub fn observe_item(&mut self, item: u64) {
        self.truth.insert(item);
    }

    /// Observe a batch of inserted items at once (ground truth is updated
    /// through [`FrequencyVector::insert_batch`]).
    pub fn observe_items(&mut self, items: &[u64]) {
        self.truth.insert_batch(items);
    }

    /// Judge an answer against the current ground truth — the same logic
    /// the [`Referee`] impl applies, exposed for erased harnesses and
    /// experiment tables.
    pub fn judge(&self, t: u64, answer: &[(u64, f64)]) -> Verdict {
        self.check_answer(t, answer)
    }

    fn check_answer(&self, t: u64, answer: &[(u64, f64)]) -> Verdict {
        if t < self.grace {
            return Verdict::Correct;
        }
        let l1 = self.truth.l1() as f64;
        if l1 == 0.0 {
            return Verdict::Correct;
        }
        // (1) Coverage: every item above eps·L1 must be reported.
        let heavy = self.truth.items_above(self.eps * l1);
        for item in &heavy {
            if !answer.iter().any(|&(i, _)| i == *item) {
                return Verdict::violation(format!(
                    "round {t}: heavy item {item} (f={} > {:.1}) missing from answer",
                    self.truth.get(*item),
                    self.eps * l1
                ));
            }
        }
        // (2) Estimates: within estimate_tol·L1 of truth.
        for &(item, est) in answer {
            let f = self.truth.get(item) as f64;
            if (est - f).abs() > self.estimate_tol * l1 + 1e-9 {
                return Verdict::violation(format!(
                    "round {t}: estimate {est:.1} for item {item} deviates from {f} by more \
                     than {:.1}",
                    self.estimate_tol * l1
                ));
            }
        }
        // (3) Optional (φ, ε) false-positive bound.
        if let Some(phi) = self.phi {
            let floor = (phi - self.eps) * l1;
            for &(item, _) in answer {
                if (self.truth.get(item) as f64) < floor - 1e-9 {
                    return Verdict::violation(format!(
                        "round {t}: item {item} with f={} reported below (φ−ε)·L1 = {floor:.1}",
                        self.truth.get(item)
                    ));
                }
            }
        }
        Verdict::Correct
    }
}

impl Snapshot for HeavyHitterReferee {
    /// Only the ground truth evolves; `eps`/`estimate_tol`/`phi`/`grace`
    /// are construction parameters the restoring instance already carries.
    fn snap(&self, w: &mut SnapWriter) {
        self.truth.snap(w);
    }

    fn restore(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.truth.restore(r)
    }
}

impl<A> Referee<A> for HeavyHitterReferee
where
    A: StreamAlg<Update = InsertOnly, Output = HhAnswer>,
{
    fn observe(&mut self, update: &InsertOnly) {
        self.truth.insert(update.0);
    }

    fn check(&mut self, t: u64, output: &HhAnswer) -> Verdict {
        self.check_answer(t, output)
    }
}

/// Referee for `(1+ε)`-approximate counting of stream length (Lemma 2.1).
#[derive(Debug, Clone)]
pub struct ApproxCountReferee {
    count: u64,
    eps: f64,
}

impl ApproxCountReferee {
    /// Accept any estimate within a `(1 ± eps)` factor of the true count.
    pub fn new(eps: f64) -> Self {
        ApproxCountReferee { count: 0, eps }
    }

    /// True count so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Observe `k` updates at once (the referee only counts them).
    pub fn observe_count(&mut self, k: u64) {
        self.count += k;
    }

    /// Judge an estimate against the current true count — the same logic
    /// the [`Referee`] impl applies, exposed for erased harnesses.
    pub fn judge(&self, t: u64, est: f64) -> Verdict {
        self.check_estimate(t, est)
    }

    fn check_estimate(&self, t: u64, est: f64) -> Verdict {
        let truth = self.count as f64;
        let lo = truth * (1.0 - self.eps) - 1.0;
        let hi = truth * (1.0 + self.eps) + 1.0;
        if est < lo || est > hi {
            Verdict::violation(format!(
                "round {t}: estimate {est:.1} outside (1±{})·{truth}",
                self.eps
            ))
        } else {
            Verdict::Correct
        }
    }
}

impl Snapshot for ApproxCountReferee {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_u64(self.count);
    }

    fn restore(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.count = r.take_u64()?;
        Ok(())
    }
}

impl<A, U> Referee<A> for ApproxCountReferee
where
    A: StreamAlg<Update = U, Output = f64>,
{
    fn observe(&mut self, _update: &U) {
        self.count += 1;
    }

    fn check(&mut self, t: u64, output: &f64) -> Verdict {
        self.check_estimate(t, *output)
    }
}

/// Referee for the L0 sandwich guarantee of Theorem 1.5:
/// `answer ≤ L0 ≤ answer · factor` (checked at every round on turnstile
/// streams).
#[derive(Debug, Clone)]
pub struct L0SandwichReferee {
    truth: FrequencyVector,
    factor: f64,
}

impl L0SandwichReferee {
    /// `factor` is the paper's `n^ε` multiplicative gap.
    pub fn new(factor: f64) -> Self {
        L0SandwichReferee {
            truth: FrequencyVector::new(),
            factor,
        }
    }

    /// Exact ground truth.
    pub fn truth(&self) -> &FrequencyVector {
        &self.truth
    }

    /// Observe one turnstile update without the typed [`Referee`] impl.
    pub fn observe_update(&mut self, item: u64, delta: i64) {
        self.truth.update(item, delta);
    }

    /// Observe a batch of turnstile updates at once.
    pub fn observe_updates(&mut self, updates: &[(u64, i64)]) {
        self.truth.update_batch(updates);
    }

    /// Judge an answer against the current ground truth — the same logic
    /// the [`Referee`] impl applies, exposed for erased harnesses.
    pub fn judge(&self, t: u64, answer: u64) -> Verdict {
        let l0 = self.truth.l0();
        let ans = answer as f64;
        if (answer > l0) || ((l0 as f64) > ans * self.factor) {
            Verdict::violation(format!(
                "round {t}: answer {answer} violates sandwich answer ≤ L0={l0} ≤ answer·{}",
                self.factor
            ))
        } else {
            Verdict::Correct
        }
    }
}

impl Snapshot for L0SandwichReferee {
    fn snap(&self, w: &mut SnapWriter) {
        self.truth.snap(w);
    }

    fn restore(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.truth.restore(r)
    }
}

impl<A> Referee<A> for L0SandwichReferee
where
    A: StreamAlg<Update = Turnstile, Output = u64>,
{
    fn observe(&mut self, update: &Turnstile) {
        self.truth.update(update.item, update.delta);
    }

    fn check(&mut self, t: u64, output: &u64) -> Verdict {
        self.judge(t, *output)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hh_referee_coverage_violation() {
        let mut r = HeavyHitterReferee::new(0.1, 0.1);
        for _ in 0..90 {
            Referee::<Dummy>::observe(&mut r, &InsertOnly(1));
        }
        for _ in 0..10 {
            Referee::<Dummy>::observe(&mut r, &InsertOnly(2));
        }
        // item 1 has f=90 > 0.1·100: must be reported.
        let missing: HhAnswer = vec![(2, 10.0)];
        assert!(!r.check_answer(100, &missing).is_correct());
        let ok: HhAnswer = vec![(1, 85.0), (2, 10.0)];
        assert!(r.check_answer(100, &ok).is_correct());
    }

    #[test]
    fn hh_referee_estimate_violation() {
        let mut r = HeavyHitterReferee::new(0.1, 0.05);
        for _ in 0..100 {
            Referee::<Dummy>::observe(&mut r, &InsertOnly(1));
        }
        // tolerance is 5; estimate off by 20 must fail.
        let bad: HhAnswer = vec![(1, 80.0)];
        assert!(!r.check_answer(100, &bad).is_correct());
        let good: HhAnswer = vec![(1, 96.0)];
        assert!(r.check_answer(100, &good).is_correct());
    }

    #[test]
    fn hh_referee_phi_false_positive() {
        let mut r = HeavyHitterReferee::new(0.1, 1.0).with_phi(0.3);
        for _ in 0..80 {
            Referee::<Dummy>::observe(&mut r, &InsertOnly(1));
        }
        for _ in 0..20 {
            Referee::<Dummy>::observe(&mut r, &InsertOnly(2));
        }
        // floor = (0.3-0.1)*100 = 20; item 3 (f=0) may not be reported.
        let bad: HhAnswer = vec![(1, 80.0), (3, 0.0)];
        assert!(!r.check_answer(100, &bad).is_correct());
        // item 2 with f=20 is exactly at the floor: allowed.
        let ok: HhAnswer = vec![(1, 80.0), (2, 20.0)];
        assert!(r.check_answer(100, &ok).is_correct());
    }

    #[test]
    fn hh_referee_grace_suppresses_checks() {
        let mut r = HeavyHitterReferee::new(0.01, 0.01).with_grace(50);
        for _ in 0..10 {
            Referee::<Dummy>::observe(&mut r, &InsertOnly(1));
        }
        // Wildly wrong answer, but within grace: accepted.
        let nonsense: HhAnswer = vec![];
        assert!(r.check_answer(10, &nonsense).is_correct());
    }

    #[test]
    fn approx_count_referee_bounds() {
        let r = ApproxCountReferee {
            count: 1000,
            eps: 0.1,
        };
        assert!(r.check_estimate(1, 1000.0).is_correct());
        assert!(r.check_estimate(1, 905.0).is_correct());
        assert!(r.check_estimate(1, 1095.0).is_correct());
        assert!(!r.check_estimate(1, 880.0).is_correct());
        assert!(!r.check_estimate(1, 1120.0).is_correct());
    }

    #[test]
    fn l0_sandwich_checks_both_sides() {
        let mut r = L0SandwichReferee::new(4.0);
        for i in 0..8u64 {
            Referee::<DummyT>::observe(&mut r, &Turnstile::insert(i));
        }
        // L0 = 8; any answer in [2, 8] passes for factor 4.
        assert!(Referee::<DummyT>::check(&mut r, 8, &8).is_correct());
        assert!(Referee::<DummyT>::check(&mut r, 8, &2).is_correct());
        assert!(
            !Referee::<DummyT>::check(&mut r, 8, &9).is_correct(),
            "overcount"
        );
        assert!(
            !Referee::<DummyT>::check(&mut r, 8, &1).is_correct(),
            "undercount"
        );
    }

    // Dummy algorithms purely to instantiate the Referee trait in tests.
    struct Dummy;
    impl StreamAlg for Dummy {
        type Update = InsertOnly;
        type Output = HhAnswer;
        fn process(&mut self, _u: &InsertOnly, _rng: &mut crate::rng::TranscriptRng) {}
        fn query(&self) -> HhAnswer {
            vec![]
        }
    }
    struct DummyT;
    impl StreamAlg for DummyT {
        type Update = Turnstile;
        type Output = u64;
        fn process(&mut self, _u: &Turnstile, _rng: &mut crate::rng::TranscriptRng) {}
        fn query(&self) -> u64 {
            0
        }
    }
}
