//! Fully transparent randomness for the white-box model.
//!
//! In the white-box adversarial game the adversary observes *all previous
//! randomness used by the algorithm* (step (1) of the round structure in §1
//! of the paper). We make that literal: algorithms draw randomness only
//! through a [`TranscriptRng`], which
//!
//! * is seeded from a **public** seed (the seed is part of the transcript);
//! * appends every drawn word to a [`RandTranscript`] the adversary reads;
//! * draws *fresh* words per round — the game loop hands the same
//!   `TranscriptRng` to every `process` call, so the stream position of each
//!   draw is well defined and reproducible.
//!
//! The generators themselves (SplitMix64 and xoshiro256\*\*) are implemented
//! here rather than taken from an external crate so that the exact bit
//! stream is pinned by this repository and the adversary-side replay in
//! attacks is byte-for-byte identical.
//!
//! All generator state here implements [`Snapshot`]: the model makes every
//! drawn word public anyway, so a checkpoint of the RNG (xoshiro state,
//! draw count, transcript ring) reveals nothing the adversary did not
//! already have, and a restored generator continues the tape draw for
//! draw.

use crate::snap::{SnapError, SnapReader, SnapWriter, Snapshot};

/// Number of most recent draws retained verbatim in the transcript ring
/// buffer. Older draws are still *knowable* by the adversary (the seed is
/// public and the total draw count is recorded) but are not stored, keeping
/// long-game memory bounded.
pub const TRANSCRIPT_RING: usize = 1024;

/// SplitMix64: the standard 64-bit seed expander (Steele, Lea, Flood 2014).
///
/// Used to initialize xoshiro state and as a tiny standalone PRNG in tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator with the given seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Returns the next 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Derives an independent seed from a master seed and a list of labels.
///
/// The tournament runner keys every cell's randomness off
/// `(master_seed, algorithm, adversary, workload, role)` through this
/// function, so each cell can be replayed in isolation and results are
/// citable: the derived seed is a pure function of its inputs, stable
/// across runs, platforms, and thread counts. Labels are absorbed into an
/// FNV-1a accumulator with a per-label length separator (so
/// `["ab", "c"]` and `["a", "bc"]` derive different seeds) and finished
/// with one [`SplitMix64`] step for full 64-bit avalanche.
pub fn derive_seed(master: u64, labels: &[&str]) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;
    let mut h = FNV_OFFSET;
    for byte in master.to_le_bytes() {
        h = (h ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
    }
    for label in labels {
        for &byte in label.as_bytes() {
            h = (h ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
        }
        h = (h ^ label.len() as u64).wrapping_mul(FNV_PRIME);
    }
    SplitMix64::new(h).next_u64()
}

/// The exact word→`[0, 1)` mapping of [`TranscriptRng::next_f64`] (top 53
/// bits, scaled), exposed so bulk kernels can convert words prefetched via
/// [`TranscriptRng::next_u64_many`] precisely as the scalar draw would.
#[inline]
pub fn f64_from_word(w: u64) -> f64 {
    (w >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// xoshiro256\*\* (Blackman & Vigna 2018): fast, high-quality, 256-bit state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

/// One xoshiro256\*\* step on an explicit state array — shared by the
/// scalar and bulk paths so both walk the identical tape.
#[inline(always)]
fn xoshiro_step(s: &mut [u64; 4]) -> u64 {
    let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
    let t = s[1] << 17;
    s[2] ^= s[0];
    s[3] ^= s[1];
    s[1] ^= s[2];
    s[0] ^= s[3];
    s[2] ^= t;
    s[3] = s[3].rotate_left(45);
    result
}

impl Xoshiro256StarStar {
    /// Seeds the generator by expanding `seed` with SplitMix64, per the
    /// reference implementation's recommendation.
    pub fn from_seed(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let s = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        Xoshiro256StarStar { s }
    }

    /// Returns the next 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        xoshiro_step(&mut self.s)
    }

    /// Fills `out` with the next `out.len()` words of the tape — exactly
    /// the words `out.len()` calls to [`Xoshiro256StarStar::next_u64`]
    /// would return, produced by an unrolled loop that keeps the state in
    /// registers for the whole batch instead of loading and storing it per
    /// word.
    pub fn fill_u64(&mut self, out: &mut [u64]) {
        let mut s = self.s;
        let mut chunks = out.chunks_exact_mut(4);
        for quad in &mut chunks {
            quad[0] = xoshiro_step(&mut s);
            quad[1] = xoshiro_step(&mut s);
            quad[2] = xoshiro_step(&mut s);
            quad[3] = xoshiro_step(&mut s);
        }
        for w in chunks.into_remainder() {
            *w = xoshiro_step(&mut s);
        }
        self.s = s;
    }
}

impl Snapshot for Xoshiro256StarStar {
    fn snap(&self, w: &mut SnapWriter) {
        for &word in &self.s {
            w.put_u64(word);
        }
    }

    fn restore(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        for word in &mut self.s {
            *word = r.take_u64()?;
        }
        Ok(())
    }
}

/// A precomputed reciprocal for exact division-free `v % n` (the
/// libdivide/Lemire "fastmod" strength reduction: one 128-bit multiply by
/// `⌈2¹²⁸/n⌉`, then the high half of a 128×64 product).
///
/// [`Reciprocal::rem`] is **bit-identical** to the hardware `v % n` for
/// every `v` and every `n ≥ 1` — not an approximation — so random tapes
/// produced through it are unchanged (proptested against `%` in
/// `rng_bulk_equivalence`). Computing the magic costs one 128-bit
/// division, amortized over every later call; the hot paths (uniform
/// sampling, CountMin bucket folding) reuse one `Reciprocal` across a
/// whole stream or sketch lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Reciprocal {
    n: u64,
    /// `⌈2¹²⁸ / n⌉`, wrapped to 0 for `n = 1` (where every residue is 0).
    magic: u128,
    /// Largest multiple of `n` that fits in `u64`: accept `v < zone` when
    /// rejection-sampling a uniform draw below `n`.
    zone: u64,
}

impl Reciprocal {
    /// Precomputes the reciprocal of `n`. Panics if `n == 0`.
    pub fn new(n: u64) -> Self {
        assert!(n > 0, "Reciprocal of 0 is undefined");
        let magic = (u128::MAX / n as u128).wrapping_add(1);
        let mut r = Reciprocal { n, magic, zone: 0 };
        r.zone = u64::MAX - r.rem(u64::MAX);
        r
    }

    /// The divisor this reciprocal was built for.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Exactly `v % n`, via two multiplies instead of a division.
    #[inline]
    pub fn rem(&self, v: u64) -> u64 {
        let low = self.magic.wrapping_mul(v as u128);
        // High 64 bits of the 192-bit product `low * n`.
        let hi = (low >> 64) as u64;
        let lo = low as u64;
        let t = ((lo as u128 * self.n as u128) >> 64) + hi as u128 * self.n as u128;
        (t >> 64) as u64
    }

    /// The rejection-sampling acceptance zone: the largest multiple of `n`
    /// representable in `u64` (accept `v < zone` for exact uniformity).
    #[inline]
    pub fn zone(&self) -> u64 {
        self.zone
    }
}

/// The public record of all randomness drawn by a streaming algorithm.
///
/// Adversaries receive a `&RandTranscript` each round. The seed is public,
/// the total number of draws is exact, and the most recent
/// [`TRANSCRIPT_RING`] words are available verbatim; together these determine
/// the entire random tape (an adversary can replay the generator from the
/// seed), so nothing is hidden — the ring buffer is purely a memory bound on
/// the harness, not a secrecy mechanism.
#[derive(Debug, Clone)]
pub struct RandTranscript {
    seed: u64,
    draws: u64,
    ring: Vec<u64>,
    ring_next: usize,
}

impl RandTranscript {
    fn new(seed: u64) -> Self {
        RandTranscript {
            seed,
            draws: 0,
            ring: Vec::with_capacity(TRANSCRIPT_RING.min(64)),
            ring_next: 0,
        }
    }

    fn record(&mut self, word: u64) {
        self.draws += 1;
        if self.ring.len() < TRANSCRIPT_RING {
            self.ring.push(word);
        } else {
            self.ring[self.ring_next] = word;
            // Conditional reset instead of `% TRANSCRIPT_RING`: this is the
            // per-draw hot path, and the wrap happens once per ring lap.
            self.ring_next += 1;
            if self.ring_next == TRANSCRIPT_RING {
                self.ring_next = 0;
            }
        }
    }

    /// Records a whole batch of drawn words with amortized accounting:
    /// `draws` is bumped once, and only the words that survive into the
    /// ring are written — ending in **exactly** the state `words.len()`
    /// calls to `record` would produce (same ring contents, same
    /// `ring_next`, same `draws`).
    fn record_many(&mut self, words: &[u64]) {
        self.draws += words.len() as u64;
        let mut rest = words;
        if self.ring.len() < TRANSCRIPT_RING {
            let take = (TRANSCRIPT_RING - self.ring.len()).min(rest.len());
            self.ring.extend_from_slice(&rest[..take]);
            rest = &rest[take..];
        }
        if rest.is_empty() {
            return;
        }
        // The ring is full. Only the last TRANSCRIPT_RING words survive;
        // place them at the positions per-word recording would have used,
        // and advance `ring_next` by the full (possibly larger) count.
        let skip = rest.len() - rest.len().min(TRANSCRIPT_RING);
        let survivors = &rest[skip..];
        let start = (self.ring_next + skip % TRANSCRIPT_RING) % TRANSCRIPT_RING;
        let first = survivors.len().min(TRANSCRIPT_RING - start);
        self.ring[start..start + first].copy_from_slice(&survivors[..first]);
        let wrapped = &survivors[first..];
        self.ring[..wrapped.len()].copy_from_slice(wrapped);
        self.ring_next = if wrapped.is_empty() {
            let end = start + first;
            if end == TRANSCRIPT_RING {
                0
            } else {
                end
            }
        } else {
            wrapped.len()
        };
    }

    /// The public seed of the algorithm's random tape.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Total number of 64-bit words the algorithm has drawn so far.
    pub fn draws(&self) -> u64 {
        self.draws
    }

    /// The most recent draws, oldest first (up to [`TRANSCRIPT_RING`] words).
    pub fn recent(&self) -> Vec<u64> {
        if self.ring.len() < TRANSCRIPT_RING {
            self.ring.clone()
        } else {
            let mut v = Vec::with_capacity(TRANSCRIPT_RING);
            v.extend_from_slice(&self.ring[self.ring_next..]);
            v.extend_from_slice(&self.ring[..self.ring_next]);
            v
        }
    }

    /// The most recent draw, if any.
    pub fn last(&self) -> Option<u64> {
        if self.draws == 0 {
            return None;
        }
        if self.ring.len() < TRANSCRIPT_RING {
            self.ring.last().copied()
        } else {
            let idx = if self.ring_next == 0 {
                TRANSCRIPT_RING - 1
            } else {
                self.ring_next - 1
            };
            Some(self.ring[idx])
        }
    }

    /// Replays the full random tape from the public seed, returning the
    /// first `n` words. This is the adversary's "I saw all previous
    /// randomness" primitive for draws that have scrolled out of the ring.
    pub fn replay(&self, n: u64) -> Vec<u64> {
        let mut rng = Xoshiro256StarStar::from_seed(self.seed);
        (0..n.min(self.draws)).map(|_| rng.next_u64()).collect()
    }
}

impl Snapshot for RandTranscript {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_u64(self.seed);
        w.put_u64(self.draws);
        w.put_u64_seq(&self.ring);
        w.put_usize(self.ring_next);
    }

    fn restore(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let seed = r.take_u64()?;
        let draws = r.take_u64()?;
        let ring = r.take_u64_seq()?;
        let ring_next = r.take_usize()?;
        if ring.len() > TRANSCRIPT_RING {
            return Err(SnapError::corrupt(format!(
                "transcript ring of {} words exceeds capacity {TRANSCRIPT_RING}",
                ring.len()
            )));
        }
        // `ring_next` only steers writes once the ring is full; a partially
        // filled ring always appends at the end (ring_next stays 0).
        if ring.len() == TRANSCRIPT_RING {
            if ring_next >= TRANSCRIPT_RING {
                return Err(SnapError::corrupt(format!(
                    "ring_next {ring_next} out of range for a full ring"
                )));
            }
        } else if ring_next != 0 {
            return Err(SnapError::corrupt(format!(
                "ring_next {ring_next} nonzero on a partially filled ring"
            )));
        }
        self.seed = seed;
        self.draws = draws;
        self.ring = ring;
        self.ring_next = ring_next;
        Ok(())
    }
}

/// The only randomness source handed to streaming algorithms.
///
/// Every draw is recorded in the public [`RandTranscript`]. All helpers are
/// built on [`TranscriptRng::next_u64`] so that the transcript captures the
/// complete tape.
#[derive(Debug, Clone)]
pub struct TranscriptRng {
    rng: Xoshiro256StarStar,
    transcript: RandTranscript,
    /// One-entry [`Reciprocal`] cache for [`TranscriptRng::below`]: callers
    /// overwhelmingly sample one modulus repeatedly (a workload's universe,
    /// a sketch's width), so the 128-bit division behind the magic is paid
    /// once per modulus change, not once per draw.
    recip: Option<Reciprocal>,
}

impl TranscriptRng {
    /// Creates a transparent RNG from a public seed.
    pub fn from_seed(seed: u64) -> Self {
        TranscriptRng {
            rng: Xoshiro256StarStar::from_seed(seed),
            transcript: RandTranscript::new(seed),
            recip: None,
        }
    }

    /// Next 64-bit word; recorded in the transcript.
    pub fn next_u64(&mut self) -> u64 {
        let w = self.rng.next_u64();
        self.transcript.record(w);
        w
    }

    /// Fills `out` with the next `out.len()` words of the tape, all
    /// recorded: the same words, transcript draw count, and ring state as
    /// `out.len()` calls to [`TranscriptRng::next_u64`], with the tape
    /// generated by the unrolled bulk fill and the transcript updated once
    /// per batch.
    pub fn next_u64_many(&mut self, out: &mut [u64]) {
        self.rng.fill_u64(out);
        self.transcript.record_many(out);
    }

    /// The cached reciprocal for modulus `n` (recomputed only when `n`
    /// changes between calls).
    #[inline]
    fn recip_for(&mut self, n: u64) -> Reciprocal {
        match self.recip {
            Some(r) if r.n() == n => r,
            _ => {
                let r = Reciprocal::new(n);
                self.recip = Some(r);
                r
            }
        }
    }

    /// Uniform `f64` in `[0, 1)` using 53 random bits.
    pub fn next_f64(&mut self) -> f64 {
        f64_from_word(self.next_u64())
    }

    /// Bernoulli draw with success probability `p` (clamped to `[0, 1]`).
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Uniform integer in `[0, n)`. Panics if `n == 0`.
    ///
    /// Uses rejection sampling on the top bits for exact uniformity; the
    /// `v % n` of the historical implementation is strength-reduced to a
    /// cached [`Reciprocal`] multiply, bit-identical to the hardware
    /// division, so existing tapes are unchanged.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is undefined");
        if n.is_power_of_two() {
            return self.next_u64() & (n - 1);
        }
        let r = self.recip_for(n);
        loop {
            let v = self.next_u64();
            if v < r.zone() {
                return r.rem(v);
            }
        }
    }

    /// Fills `out` with `out.len()` uniform integers in `[0, n)` — the
    /// exact values (and the exact raw-word tape, rejections included) that
    /// `out.len()` calls to [`TranscriptRng::below`] would produce, with
    /// the words drawn by bulk fill and the transcript updated per batch
    /// instead of per draw. Panics if `n == 0`.
    pub fn below_many(&mut self, n: u64, out: &mut [u64]) {
        assert!(n > 0, "below(0) is undefined");
        if out.is_empty() {
            return;
        }
        if n.is_power_of_two() {
            let mask = n - 1;
            self.next_u64_many(out);
            for v in out.iter_mut() {
                *v &= mask;
            }
            return;
        }
        let r = self.recip_for(n);
        // Optimistic pass: one word per output. Rejected words are skipped
        // (in tape order, exactly like the scalar rejection loop) and the
        // shortfall redrawn in small rounds — each round draws exactly the
        // number of outputs still missing, so the total word count matches
        // the scalar loop draw for draw.
        self.next_u64_many(out);
        let mut filled = 0;
        for i in 0..out.len() {
            let v = out[i];
            if v < r.zone() {
                out[filled] = r.rem(v);
                filled += 1;
            }
        }
        let mut spare = [0u64; 32];
        while filled < out.len() {
            let need = (out.len() - filled).min(spare.len());
            self.next_u64_many(&mut spare[..need]);
            for &v in &spare[..need] {
                if v < r.zone() {
                    out[filled] = r.rem(v);
                    filled += 1;
                }
            }
        }
    }

    /// Uniform integer in `[lo, hi)`. Panics if the range is empty.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        lo + self.below(hi - lo)
    }

    /// The public transcript (seed, draw count, recent draws).
    pub fn transcript(&self) -> &RandTranscript {
        &self.transcript
    }
}

impl Snapshot for TranscriptRng {
    fn snap(&self, w: &mut SnapWriter) {
        // The reciprocal cache is a pure function of the last modulus and
        // is rebuilt on first use; only generator + transcript persist.
        self.rng.snap(w);
        self.transcript.snap(w);
    }

    fn restore(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.rng.restore(r)?;
        self.transcript.restore(r)?;
        self.recip = None;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_values() {
        // Reference outputs for seed 1234567 from the public-domain
        // SplitMix64 reference implementation.
        let mut sm = SplitMix64::new(1234567);
        let a = sm.next_u64();
        let b = sm.next_u64();
        assert_ne!(a, b);
        // Determinism: same seed, same tape.
        let mut sm2 = SplitMix64::new(1234567);
        assert_eq!(sm2.next_u64(), a);
        assert_eq!(sm2.next_u64(), b);
    }

    #[test]
    fn derive_seed_is_stable_and_label_sensitive() {
        let a = derive_seed(42, &["misra_gries", "zipf", "uniform", "game"]);
        // Pure function: identical inputs, identical seed — forever.
        assert_eq!(
            a,
            derive_seed(42, &["misra_gries", "zipf", "uniform", "game"])
        );
        // Every input perturbs the output.
        assert_ne!(
            a,
            derive_seed(43, &["misra_gries", "zipf", "uniform", "game"])
        );
        assert_ne!(
            a,
            derive_seed(42, &["misra_gries", "zipf", "uniform", "ctor"])
        );
        // Label boundaries matter: "ab","c" and "a","bc" must not collide.
        assert_ne!(derive_seed(1, &["ab", "c"]), derive_seed(1, &["a", "bc"]));
        assert_ne!(derive_seed(1, &[]), derive_seed(1, &[""]));
    }

    #[test]
    fn derive_seed_spreads_over_cells() {
        // All 12 x 5 x 5 tournament cells get distinct seeds.
        let algs = [
            "a1", "a2", "a3", "a4", "a5", "a6", "a7", "a8", "a9", "a10", "a11", "a12",
        ];
        let advs = ["zipf", "ddos", "uniform", "cycle", "hh_evader"];
        let wls = ["zipf", "ddos", "churn", "uniform", "cycle"];
        let mut seen = std::collections::HashSet::new();
        for a in algs {
            for d in advs {
                for w in wls {
                    assert!(seen.insert(derive_seed(7, &[a, d, w, "game"])));
                }
            }
        }
        assert_eq!(seen.len(), 12 * 5 * 5);
    }

    #[test]
    fn xoshiro_deterministic_and_nondegenerate() {
        let mut r1 = Xoshiro256StarStar::from_seed(42);
        let mut r2 = Xoshiro256StarStar::from_seed(42);
        let tape1: Vec<u64> = (0..64).map(|_| r1.next_u64()).collect();
        let tape2: Vec<u64> = (0..64).map(|_| r2.next_u64()).collect();
        assert_eq!(tape1, tape2);
        // Distinct seeds should diverge immediately with overwhelming prob.
        let mut r3 = Xoshiro256StarStar::from_seed(43);
        let tape3: Vec<u64> = (0..64).map(|_| r3.next_u64()).collect();
        assert_ne!(tape1, tape3);
    }

    #[test]
    fn transcript_records_all_draws() {
        let mut rng = TranscriptRng::from_seed(9);
        let drawn: Vec<u64> = (0..10).map(|_| rng.next_u64()).collect();
        let t = rng.transcript();
        assert_eq!(t.draws(), 10);
        assert_eq!(t.recent(), drawn);
        assert_eq!(t.last(), drawn.last().copied());
        assert_eq!(t.seed(), 9);
    }

    #[test]
    fn transcript_replay_matches_tape() {
        let mut rng = TranscriptRng::from_seed(77);
        let drawn: Vec<u64> = (0..500).map(|_| rng.next_u64()).collect();
        assert_eq!(rng.transcript().replay(500), drawn);
        // Replay is capped at the number of draws actually made.
        assert_eq!(rng.transcript().replay(10_000).len(), 500);
    }

    #[test]
    fn transcript_ring_wraps_keeping_most_recent() {
        let mut rng = TranscriptRng::from_seed(5);
        let n = TRANSCRIPT_RING as u64 + 37;
        let all: Vec<u64> = (0..n).map(|_| rng.next_u64()).collect();
        let recent = rng.transcript().recent();
        assert_eq!(recent.len(), TRANSCRIPT_RING);
        assert_eq!(&recent[..], &all[37..]);
        assert_eq!(rng.transcript().draws(), n);
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut rng = TranscriptRng::from_seed(3);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let v = rng.below(7);
            assert!(v < 7);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&b| b), "all residues should appear");
        // Power-of-two fast path.
        for _ in 0..100 {
            assert!(rng.below(8) < 8);
        }
    }

    #[test]
    fn range_respects_bounds() {
        let mut rng = TranscriptRng::from_seed(11);
        for _ in 0..1000 {
            let v = rng.range(10, 20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = TranscriptRng::from_seed(13);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 1/2");
    }

    #[test]
    fn bernoulli_frequency_close_to_p() {
        let mut rng = TranscriptRng::from_seed(17);
        let p = 0.3;
        let hits = (0..20_000).filter(|_| rng.bernoulli(p)).count();
        let freq = hits as f64 / 20_000.0;
        assert!((freq - p).abs() < 0.02, "freq {freq} far from {p}");
    }

    #[test]
    #[should_panic(expected = "below(0)")]
    fn below_zero_panics() {
        let mut rng = TranscriptRng::from_seed(1);
        rng.below(0);
    }

    #[test]
    fn reciprocal_rem_matches_hardware_division() {
        let divisors = [
            1u64,
            2,
            3,
            7,
            10,
            255,
            256,
            257,
            1 << 20,
            (1 << 20) + 1,
            P_TEST,
            u64::MAX - 1,
            u64::MAX,
        ];
        let values = [0u64, 1, 2, 6, 7, 255, 1 << 33, u64::MAX - 1, u64::MAX];
        for &n in &divisors {
            let r = Reciprocal::new(n);
            assert_eq!(r.n(), n);
            assert_eq!(r.zone(), u64::MAX - (u64::MAX % n), "zone for n={n}");
            for &v in &values {
                assert_eq!(r.rem(v), v % n, "v={v}, n={n}");
            }
            // A stretch of sequential values around a multiple boundary.
            for v in (n.saturating_sub(3))..(n.saturating_add(3)) {
                assert_eq!(r.rem(v), v % n, "v={v}, n={n}");
            }
        }
        let mut sm = SplitMix64::new(99);
        for _ in 0..5000 {
            let n = sm.next_u64().max(1);
            let v = sm.next_u64();
            assert_eq!(Reciprocal::new(n).rem(v), v % n, "v={v}, n={n}");
        }
    }

    const P_TEST: u64 = (1 << 61) - 1;

    #[test]
    fn fill_u64_matches_scalar_tape() {
        for len in [0usize, 1, 3, 4, 5, 8, 63, 64, 65, 1000] {
            let mut scalar = Xoshiro256StarStar::from_seed(7);
            let mut bulk = scalar.clone();
            let want: Vec<u64> = (0..len).map(|_| scalar.next_u64()).collect();
            let mut got = vec![0u64; len];
            bulk.fill_u64(&mut got);
            assert_eq!(got, want, "len {len}");
            // Post-state agrees: the next word continues the same tape.
            assert_eq!(bulk.next_u64(), scalar.next_u64(), "len {len}");
        }
    }

    #[test]
    fn next_u64_many_matches_scalar_transcript_across_ring_wrap() {
        let mut scalar = TranscriptRng::from_seed(21);
        let mut bulk = TranscriptRng::from_seed(21);
        // Batch sizes chosen to land before, straddle, and lap the ring.
        for batch in [
            1usize,
            7,
            TRANSCRIPT_RING - 3,
            10,
            TRANSCRIPT_RING,
            2 * TRANSCRIPT_RING + 13,
        ] {
            let want: Vec<u64> = (0..batch).map(|_| scalar.next_u64()).collect();
            let mut got = vec![0u64; batch];
            bulk.next_u64_many(&mut got);
            assert_eq!(got, want, "batch {batch}");
            assert_eq!(bulk.transcript().draws(), scalar.transcript().draws());
            assert_eq!(bulk.transcript().recent(), scalar.transcript().recent());
            assert_eq!(bulk.transcript().last(), scalar.transcript().last());
        }
    }

    #[test]
    fn snapshot_resumes_tape_draw_for_draw() {
        use crate::snap;
        // Before, straddling, and after a full ring lap: the restored
        // generator must continue word-for-word and keep an identical
        // transcript (draws, ring contents, ring cursor).
        for warmup in [
            0u64,
            17,
            TRANSCRIPT_RING as u64,
            3 * TRANSCRIPT_RING as u64 + 5,
        ] {
            let mut rng = TranscriptRng::from_seed(123);
            for _ in 0..warmup {
                rng.next_u64();
            }
            let bytes = snap::to_bytes(&rng);
            let mut restored = TranscriptRng::from_seed(0);
            snap::from_bytes(&mut restored, &bytes).unwrap();
            assert_eq!(restored.transcript().seed(), 123, "warmup {warmup}");
            assert_eq!(restored.transcript().draws(), warmup);
            assert_eq!(restored.transcript().recent(), rng.transcript().recent());
            for i in 0..2 * TRANSCRIPT_RING {
                assert_eq!(restored.next_u64(), rng.next_u64(), "warmup {warmup} +{i}");
            }
            assert_eq!(restored.transcript().recent(), rng.transcript().recent());
            // Mixed draw kinds (rejection sampling included) also agree.
            assert_eq!(restored.below(1000), rng.below(1000));
            assert_eq!(restored.next_f64(), rng.next_f64());
        }
    }

    #[test]
    fn snapshot_rejects_corrupt_transcripts() {
        use crate::snap;
        let mut rng = TranscriptRng::from_seed(5);
        for _ in 0..10 {
            rng.next_u64();
        }
        // A partially filled ring must carry ring_next == 0.
        let mut w = crate::snap::SnapWriter::new();
        rng.snap(&mut w);
        let mut bytes = w.finish();
        let tail = bytes.len() - 8;
        bytes[tail..].copy_from_slice(&3u64.to_le_bytes());
        let mut victim = TranscriptRng::from_seed(0);
        assert!(matches!(
            snap::from_bytes(&mut victim, &bytes),
            Err(crate::snap::SnapError::Corrupt(_))
        ));
    }

    #[test]
    fn below_many_matches_scalar_draw_for_draw() {
        for n in [3u64, 7, 8, 100, (1 << 32) - 5, P_TEST] {
            let mut scalar = TranscriptRng::from_seed(31);
            let mut bulk = TranscriptRng::from_seed(31);
            let want: Vec<u64> = (0..2000).map(|_| scalar.below(n)).collect();
            let mut got = vec![0u64; 2000];
            bulk.below_many(n, &mut got);
            assert_eq!(got, want, "n {n}");
            assert_eq!(
                bulk.transcript().draws(),
                scalar.transcript().draws(),
                "n {n}: rejection redraw counts must match"
            );
            assert_eq!(bulk.transcript().recent(), scalar.transcript().recent());
            // Both continue on the same tape afterwards.
            assert_eq!(bulk.below(n), scalar.below(n));
        }
    }
}
