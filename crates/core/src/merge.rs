//! Mergeable sketch state — the substrate of sharded ingestion.
//!
//! A *mergeable* summary supports combining two instances built from two
//! disjoint stream segments into one instance whose guarantee covers the
//! concatenated stream. Mergeability is what lets one logical stream be
//! partitioned across many cores (see `wb_engine::shard`): each shard
//! ingests its slice independently and the final answer is read off the
//! merged state.
//!
//! **White-box caveat.** Sharding does not weaken the adversary — it
//! strengthens it. In the white-box model of the source paper the adversary
//! already observes the complete internal state; with `S` shards it observes
//! *every* shard's state and every shard's randomness tape. Only algorithms
//! whose robustness argument never relies on hidden state (deterministic
//! summaries, linear sketches with public coefficients) merge soundly here;
//! randomized state whose distribution matters (Morris exponents) is
//! deliberately [`MergeError::Unmergeable`], because no deterministic
//! combination of two exponents preserves the estimator's distribution.
//!
//! The typed entry point is [`Mergeable`]; the erased mirror is
//! `DynStreamAlg::merge_dyn` in `wb_engine`, which downcast-checks that both
//! operands are the same concrete type before delegating to
//! `StreamAlg::merge_from`.

use std::fmt;

/// Why two summaries could not be merged.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MergeError {
    /// The algorithm has no sound merge operation (e.g. Morris counters:
    /// combining two exponents deterministically biases the estimator).
    Unmergeable {
        /// Bare name of the algorithm that refused.
        alg: &'static str,
    },
    /// The erased operands are different concrete types — merging a
    /// `MisraGries` into a `CountMin` is a wiring bug, not a stream issue.
    TypeMismatch {
        /// Name of the receiving instance.
        left: &'static str,
        /// Name of the offered instance.
        right: &'static str,
    },
    /// Same type, but the instances were built with incompatible parameters
    /// (different counter budgets, different hash seeds, …).
    Incompatible(String),
}

impl MergeError {
    /// Convenience constructor for [`MergeError::Unmergeable`].
    pub fn unmergeable(alg: &'static str) -> Self {
        MergeError::Unmergeable { alg }
    }

    /// Convenience constructor for [`MergeError::Incompatible`].
    pub fn incompatible(msg: impl Into<String>) -> Self {
        MergeError::Incompatible(msg.into())
    }
}

impl fmt::Display for MergeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MergeError::Unmergeable { alg } => {
                write!(f, "{alg} has no sound merge operation")
            }
            MergeError::TypeMismatch { left, right } => {
                write!(f, "cannot merge {right} into {left} (different types)")
            }
            MergeError::Incompatible(msg) => {
                write!(f, "instances are not merge-compatible: {msg}")
            }
        }
    }
}

impl std::error::Error for MergeError {}

/// A summary whose state can absorb another instance of the same type.
///
/// Contract: if `a` ingested stream `A` and `b` ingested stream `B` (both
/// starting from identically-constructed empty instances), then after
/// `a.merge(&b)` the instance `a` must answer its query for the
/// concatenated stream `A ∘ B` within the **same guarantee** the algorithm
/// claims for single-stream ingestion of `A ∘ B`. Linear sketches
/// (`CountMin`, `AmsF2`, exact frequency state) merge exactly; counter
/// summaries (`MisraGries`, `SpaceSaving`) merge with the classic mergeable-
/// summaries error bounds, which stay inside the referee tolerance used
/// throughout this workspace.
///
/// Implementations must be deterministic — the sharded reduction tree in
/// `wb_engine::shard` relies on merges being pure functions of the two
/// operand states so that reports stay byte-identical across thread counts.
pub trait Mergeable {
    /// Fold `other`'s state into `self`, or explain why that is unsound.
    fn merge(&mut self, other: &Self) -> Result<(), MergeError>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(
            MergeError::unmergeable("MorrisCounter").to_string(),
            "MorrisCounter has no sound merge operation"
        );
        assert_eq!(
            MergeError::TypeMismatch {
                left: "MisraGries",
                right: "CountMin",
            }
            .to_string(),
            "cannot merge CountMin into MisraGries (different types)"
        );
        assert_eq!(
            MergeError::incompatible("k 4 vs 8").to_string(),
            "instances are not merge-compatible: k 4 vs 8"
        );
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn std::error::Error> = Box::new(MergeError::unmergeable("X"));
        assert!(e.to_string().contains("no sound merge"));
    }
}
