//! Versioned, length-prefixed binary snapshots — the crash-safe
//! persistence layer under checkpoint/resume.
//!
//! The white-box model makes this subsystem almost free: *all* algorithm
//! randomness is public (seed + transcript), so a snapshot is just the
//! mutable state an adversary could already reconstruct — there is no
//! hidden key material to protect, and byte-identical replay after a
//! restore is exactly the determinism the model demands anyway.
//!
//! # Codec
//!
//! No serde, no reflection: every snapshot is a hand-rolled byte string
//! with a fixed frame,
//!
//! ```text
//! "WBSN" | version: u16 LE | payload...
//! ```
//!
//! and a payload written field by field through [`SnapWriter`]:
//!
//! * integers are fixed-width little-endian (`u8`/`u16`/`u32`/`u64`/`i64`);
//! * `f64` is stored as its IEEE-754 bit pattern (`to_bits`), so restored
//!   floats are bit-identical, NaN payloads included;
//! * sequences and strings carry a `u64` length prefix followed by their
//!   elements — nothing is delimiter-scanned;
//! * maps are written as sorted `(key, value)` pairs so the same state
//!   always produces the same bytes regardless of hash iteration order.
//!
//! [`SnapReader`] mirrors the writer: every read is bounds-checked
//! ([`SnapError::Truncated`]), lengths are validated against the remaining
//! input before allocation, and [`SnapReader::finish`] rejects trailing
//! garbage. Restores are **in-place**: callers construct the object with
//! its original parameters (and, where relevant, the original derived
//! seed) and then overwrite the mutable state, which keeps large derived
//! immutables — SIS matrices, CRHF keys, reciprocal caches — out of the
//! snapshot entirely.
//!
//! # Versioning rules
//!
//! `SNAP_VERSION` is bumped whenever the byte layout of *any* snapshotted
//! type changes. There is deliberately no migration machinery: a snapshot
//! is a crash-recovery artifact, not an archival format, and a version
//! mismatch is reported as [`SnapError::UnsupportedVersion`] so the caller
//! can discard the checkpoint and rerun.

use std::collections::HashMap;
use std::fmt;

/// Magic bytes opening every snapshot frame.
pub const SNAP_MAGIC: [u8; 4] = *b"WBSN";

/// Current snapshot codec version (see the module docs for bump rules).
pub const SNAP_VERSION: u16 = 1;

/// Why a snapshot could not be produced or restored.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapError {
    /// The input ended before a field could be read in full.
    Truncated {
        /// Bytes the pending read needed.
        needed: u64,
        /// Bytes actually remaining.
        remaining: u64,
    },
    /// The frame does not start with [`SNAP_MAGIC`].
    BadMagic,
    /// The frame's codec version is not [`SNAP_VERSION`].
    UnsupportedVersion(u16),
    /// A decoded value is structurally impossible (bad discriminant,
    /// length out of range, invariant violation).
    Corrupt(String),
    /// The type does not support snapshots (the [`crate::stream::StreamAlg`]
    /// default — mirrors `merge_from`'s unmergeable default).
    Unsupported(String),
    /// The snapshot belongs to a different type or configuration than the
    /// instance it is being restored into.
    Mismatch {
        /// What the restoring instance is.
        expected: String,
        /// What the snapshot says it holds.
        found: String,
    },
    /// The payload decoded cleanly but bytes were left over.
    TrailingBytes(u64),
}

impl SnapError {
    /// The standard "this type has no snapshot support" error.
    pub fn unsupported(name: impl Into<String>) -> Self {
        SnapError::Unsupported(name.into())
    }

    /// A structural-corruption error with a formatted message.
    pub fn corrupt(msg: impl Into<String>) -> Self {
        SnapError::Corrupt(msg.into())
    }

    /// A type/configuration mismatch between snapshot and instance.
    pub fn mismatch(expected: impl Into<String>, found: impl Into<String>) -> Self {
        SnapError::Mismatch {
            expected: expected.into(),
            found: found.into(),
        }
    }
}

impl fmt::Display for SnapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapError::Truncated { needed, remaining } => write!(
                f,
                "snapshot truncated: needed {needed} bytes, {remaining} remaining"
            ),
            SnapError::BadMagic => write!(f, "snapshot frame does not start with WBSN magic"),
            SnapError::UnsupportedVersion(v) => write!(
                f,
                "snapshot codec version {v} is not supported (expected {SNAP_VERSION})"
            ),
            SnapError::Corrupt(msg) => write!(f, "snapshot corrupt: {msg}"),
            SnapError::Unsupported(name) => {
                write!(f, "{name} does not support snapshot/restore")
            }
            SnapError::Mismatch { expected, found } => write!(
                f,
                "snapshot mismatch: restoring into {expected}, snapshot holds {found}"
            ),
            SnapError::TrailingBytes(n) => {
                write!(f, "snapshot has {n} trailing bytes after the payload")
            }
        }
    }
}

impl std::error::Error for SnapError {}

/// Append-only encoder for one snapshot frame. [`SnapWriter::new`] writes
/// the magic and version; [`SnapWriter::finish`] returns the bytes.
#[derive(Debug)]
pub struct SnapWriter {
    buf: Vec<u8>,
}

impl SnapWriter {
    /// Starts a frame: magic + current version.
    pub fn new() -> Self {
        let mut buf = Vec::with_capacity(64);
        buf.extend_from_slice(&SNAP_MAGIC);
        buf.extend_from_slice(&SNAP_VERSION.to_le_bytes());
        SnapWriter { buf }
    }

    /// The finished frame.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Appends a `u8`.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `bool` as one byte (0/1).
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// Appends a `u16` little-endian.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u32` little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64` little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `i64` little-endian.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` as `u64`.
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Appends an `f64` as its IEEE-754 bit pattern.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends a length-prefixed byte string.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_u64(v.len() as u64);
        self.buf.extend_from_slice(v);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }

    /// Appends a length-prefixed `u64` sequence.
    pub fn put_u64_seq(&mut self, v: &[u64]) {
        self.put_u64(v.len() as u64);
        for &x in v {
            self.put_u64(x);
        }
    }

    /// Appends a length-prefixed `u32` sequence.
    pub fn put_u32_seq(&mut self, v: &[u32]) {
        self.put_u64(v.len() as u64);
        for &x in v {
            self.put_u32(x);
        }
    }

    /// Appends a `HashMap<u64, i64>` as sorted `(key, value)` pairs —
    /// deterministic bytes for any iteration order.
    pub fn put_map_u64_i64(&mut self, m: &HashMap<u64, i64>) {
        let mut pairs: Vec<(u64, i64)> = m.iter().map(|(&k, &v)| (k, v)).collect();
        pairs.sort_unstable_by_key(|&(k, _)| k);
        self.put_u64(pairs.len() as u64);
        for (k, v) in pairs {
            self.put_u64(k);
            self.put_i64(v);
        }
    }

    /// Appends a `HashMap<u64, u64>` as sorted `(key, value)` pairs.
    pub fn put_map_u64_u64(&mut self, m: &HashMap<u64, u64>) {
        let mut pairs: Vec<(u64, u64)> = m.iter().map(|(&k, &v)| (k, v)).collect();
        pairs.sort_unstable_by_key(|&(k, _)| k);
        self.put_u64(pairs.len() as u64);
        for (k, v) in pairs {
            self.put_u64(k);
            self.put_u64(v);
        }
    }
}

impl Default for SnapWriter {
    fn default() -> Self {
        SnapWriter::new()
    }
}

/// Bounds-checked decoder over one snapshot frame. [`SnapReader::new`]
/// validates magic and version; [`SnapReader::finish`] rejects trailing
/// bytes.
#[derive(Debug)]
pub struct SnapReader<'a> {
    rest: &'a [u8],
}

impl<'a> SnapReader<'a> {
    /// Opens a frame, validating magic and version.
    pub fn new(bytes: &'a [u8]) -> Result<Self, SnapError> {
        if bytes.len() < 6 {
            return Err(SnapError::Truncated {
                needed: 6,
                remaining: bytes.len() as u64,
            });
        }
        if bytes[..4] != SNAP_MAGIC {
            return Err(SnapError::BadMagic);
        }
        let version = u16::from_le_bytes([bytes[4], bytes[5]]);
        if version != SNAP_VERSION {
            return Err(SnapError::UnsupportedVersion(version));
        }
        Ok(SnapReader { rest: &bytes[6..] })
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.rest.len()
    }

    /// Succeeds iff the whole payload was consumed.
    pub fn finish(self) -> Result<(), SnapError> {
        if self.rest.is_empty() {
            Ok(())
        } else {
            Err(SnapError::TrailingBytes(self.rest.len() as u64))
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapError> {
        if self.rest.len() < n {
            return Err(SnapError::Truncated {
                needed: n as u64,
                remaining: self.rest.len() as u64,
            });
        }
        let (head, tail) = self.rest.split_at(n);
        self.rest = tail;
        Ok(head)
    }

    /// Reads a `u8`.
    pub fn take_u8(&mut self) -> Result<u8, SnapError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `bool` (one byte, strictly 0 or 1).
    pub fn take_bool(&mut self) -> Result<bool, SnapError> {
        match self.take_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(SnapError::corrupt(format!("invalid bool byte {b}"))),
        }
    }

    /// Reads a `u16` little-endian.
    pub fn take_u16(&mut self) -> Result<u16, SnapError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a `u32` little-endian.
    pub fn take_u32(&mut self) -> Result<u32, SnapError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a `u64` little-endian.
    pub fn take_u64(&mut self) -> Result<u64, SnapError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().unwrap()))
    }

    /// Reads an `i64` little-endian.
    pub fn take_i64(&mut self) -> Result<i64, SnapError> {
        let b = self.take(8)?;
        Ok(i64::from_le_bytes(b.try_into().unwrap()))
    }

    /// Reads a `usize` (stored as `u64`; must fit the platform).
    pub fn take_usize(&mut self) -> Result<usize, SnapError> {
        let v = self.take_u64()?;
        usize::try_from(v).map_err(|_| SnapError::corrupt(format!("usize overflow: {v}")))
    }

    /// Reads an `f64` from its bit pattern.
    pub fn take_f64(&mut self) -> Result<f64, SnapError> {
        Ok(f64::from_bits(self.take_u64()?))
    }

    /// Reads a sequence length prefix, validating it against the bytes
    /// remaining (each element occupying at least `elem_size` bytes) so a
    /// corrupt length cannot trigger a huge allocation.
    fn take_len(&mut self, elem_size: usize) -> Result<usize, SnapError> {
        let len = self.take_usize()?;
        let need = (len as u128) * (elem_size as u128);
        if need > self.rest.len() as u128 {
            return Err(SnapError::Truncated {
                needed: need.min(u64::MAX as u128) as u64,
                remaining: self.rest.len() as u64,
            });
        }
        Ok(len)
    }

    /// Reads a length-prefixed byte string.
    pub fn take_bytes(&mut self) -> Result<Vec<u8>, SnapError> {
        let len = self.take_len(1)?;
        Ok(self.take(len)?.to_vec())
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn take_str(&mut self) -> Result<String, SnapError> {
        let bytes = self.take_bytes()?;
        String::from_utf8(bytes).map_err(|_| SnapError::corrupt("string is not UTF-8"))
    }

    /// Reads a length-prefixed `u64` sequence.
    pub fn take_u64_seq(&mut self) -> Result<Vec<u64>, SnapError> {
        let len = self.take_len(8)?;
        let mut v = Vec::with_capacity(len);
        for _ in 0..len {
            v.push(self.take_u64()?);
        }
        Ok(v)
    }

    /// Reads a length-prefixed `u32` sequence.
    pub fn take_u32_seq(&mut self) -> Result<Vec<u32>, SnapError> {
        let len = self.take_len(4)?;
        let mut v = Vec::with_capacity(len);
        for _ in 0..len {
            v.push(self.take_u32()?);
        }
        Ok(v)
    }

    /// Reads a sorted-pairs `HashMap<u64, i64>`.
    pub fn take_map_u64_i64(&mut self) -> Result<HashMap<u64, i64>, SnapError> {
        let len = self.take_len(16)?;
        let mut m = HashMap::with_capacity(len);
        for _ in 0..len {
            let k = self.take_u64()?;
            let v = self.take_i64()?;
            if m.insert(k, v).is_some() {
                return Err(SnapError::corrupt(format!("duplicate map key {k}")));
            }
        }
        Ok(m)
    }

    /// Reads a sorted-pairs `HashMap<u64, u64>`.
    pub fn take_map_u64_u64(&mut self) -> Result<HashMap<u64, u64>, SnapError> {
        let len = self.take_len(16)?;
        let mut m = HashMap::with_capacity(len);
        for _ in 0..len {
            let k = self.take_u64()?;
            let v = self.take_u64()?;
            if m.insert(k, v).is_some() {
                return Err(SnapError::corrupt(format!("duplicate map key {k}")));
            }
        }
        Ok(m)
    }
}

/// In-place snapshot/restore of a type's mutable state.
///
/// The contract is **restore-into-a-twin**: construct the value with the
/// same parameters (and derived seed, where construction draws randomness)
/// as the snapshotted instance, then [`Snapshot::restore`] overwrites the
/// mutable state so that every subsequent operation is bit-identical to
/// the original continuing uninterrupted. Implementations serialize all
/// state that evolves during a run, validate immutable configuration
/// (sizes, parameters) against the snapshot, and skip pure caches that are
/// rebuilt on demand.
pub trait Snapshot {
    /// Appends this value's state to `w`.
    fn snap(&self, w: &mut SnapWriter);

    /// Overwrites this value's state from `r`.
    fn restore(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError>;
}

/// Serializes `value` as one complete frame (magic + version + payload).
pub fn to_bytes<T: Snapshot + ?Sized>(value: &T) -> Vec<u8> {
    let mut w = SnapWriter::new();
    value.snap(&mut w);
    w.finish()
}

/// Restores `value` in place from a complete frame, rejecting trailing
/// bytes.
pub fn from_bytes<T: Snapshot + ?Sized>(value: &mut T, bytes: &[u8]) -> Result<(), SnapError> {
    let mut r = SnapReader::new(bytes)?;
    value.restore(&mut r)?;
    r.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip_all_primitives() {
        let mut w = SnapWriter::new();
        w.put_u8(7);
        w.put_bool(true);
        w.put_u16(0xBEEF);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 3);
        w.put_i64(-42);
        w.put_usize(12345);
        w.put_f64(-0.125);
        w.put_f64(f64::NAN);
        w.put_bytes(b"abc");
        w.put_str("wbsn \u{1F980}");
        w.put_u64_seq(&[1, 2, 3]);
        w.put_u32_seq(&[9, 8]);
        let bytes = w.finish();
        assert_eq!(&bytes[..4], b"WBSN");

        let mut r = SnapReader::new(&bytes).unwrap();
        assert_eq!(r.take_u8().unwrap(), 7);
        assert!(r.take_bool().unwrap());
        assert_eq!(r.take_u16().unwrap(), 0xBEEF);
        assert_eq!(r.take_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.take_u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.take_i64().unwrap(), -42);
        assert_eq!(r.take_usize().unwrap(), 12345);
        assert_eq!(r.take_f64().unwrap(), -0.125);
        assert!(r.take_f64().unwrap().is_nan());
        assert_eq!(r.take_bytes().unwrap(), b"abc");
        assert_eq!(r.take_str().unwrap(), "wbsn \u{1F980}");
        assert_eq!(r.take_u64_seq().unwrap(), vec![1, 2, 3]);
        assert_eq!(r.take_u32_seq().unwrap(), vec![9, 8]);
        r.finish().unwrap();
    }

    #[test]
    fn maps_roundtrip_and_encode_deterministically() {
        let mut m = HashMap::new();
        for k in [9u64, 1, 5, 1 << 40] {
            m.insert(k, -(k as i64));
        }
        let mut w1 = SnapWriter::new();
        w1.put_map_u64_i64(&m);
        let b1 = w1.finish();
        // A map rebuilt in a different insertion order encodes identically.
        let mut m2 = HashMap::new();
        for k in [1 << 40, 5u64, 1, 9] {
            m2.insert(k, -(k as i64));
        }
        let mut w2 = SnapWriter::new();
        w2.put_map_u64_i64(&m2);
        assert_eq!(b1, w2.finish());
        let mut r = SnapReader::new(&b1).unwrap();
        assert_eq!(r.take_map_u64_i64().unwrap(), m);
        r.finish().unwrap();
    }

    #[test]
    fn bad_frames_are_rejected() {
        assert_eq!(
            SnapReader::new(b"WBS").err(),
            Some(SnapError::Truncated {
                needed: 6,
                remaining: 3
            })
        );
        assert_eq!(
            SnapReader::new(b"NOPE\x01\x00").err(),
            Some(SnapError::BadMagic)
        );
        assert_eq!(
            SnapReader::new(b"WBSN\x63\x00").err(),
            Some(SnapError::UnsupportedVersion(0x63))
        );

        // Truncated payload.
        let mut w = SnapWriter::new();
        w.put_u64(1);
        let mut bytes = w.finish();
        bytes.pop();
        let mut r = SnapReader::new(&bytes).unwrap();
        assert!(matches!(
            r.take_u64(),
            Err(SnapError::Truncated { needed: 8, .. })
        ));

        // A corrupt sequence length cannot cause a huge allocation.
        let mut w = SnapWriter::new();
        w.put_u64(u64::MAX / 2);
        let bytes = w.finish();
        let mut r = SnapReader::new(&bytes).unwrap();
        assert!(matches!(r.take_u64_seq(), Err(SnapError::Truncated { .. })));

        // Trailing bytes are an error.
        let mut w = SnapWriter::new();
        w.put_u8(1);
        w.put_u8(2);
        let bytes = w.finish();
        let mut r = SnapReader::new(&bytes).unwrap();
        r.take_u8().unwrap();
        assert_eq!(r.finish(), Err(SnapError::TrailingBytes(1)));
    }

    #[test]
    fn bool_bytes_are_strict() {
        let mut w = SnapWriter::new();
        w.put_u8(2);
        let bytes = w.finish();
        let mut r = SnapReader::new(&bytes).unwrap();
        assert!(matches!(r.take_bool(), Err(SnapError::Corrupt(_))));
    }

    #[test]
    fn helper_roundtrip() {
        struct P(u64, f64);
        impl Snapshot for P {
            fn snap(&self, w: &mut SnapWriter) {
                w.put_u64(self.0);
                w.put_f64(self.1);
            }
            fn restore(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
                self.0 = r.take_u64()?;
                self.1 = r.take_f64()?;
                Ok(())
            }
        }
        let bytes = to_bytes(&P(17, 0.5));
        let mut q = P(0, 0.0);
        from_bytes(&mut q, &bytes).unwrap();
        assert_eq!((q.0, q.1), (17, 0.5));
        // Trailing garbage after the payload fails the whole restore.
        let mut bad = bytes.clone();
        bad.push(0);
        assert_eq!(from_bytes(&mut q, &bad), Err(SnapError::TrailingBytes(1)));
    }
}
