//! Fingerprint and pattern-matching throughput (§2.6 / Algorithm 6).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use wb_core::rng::TranscriptRng;
use wb_crypto::crhf::DlExpParams;
use wb_strings::{naive_find_all, KarpRabin, KarpRabinParams, StreamingPatternMatcher};

fn bench_fingerprints(c: &mut Criterion) {
    let mut rng = TranscriptRng::from_seed(14);
    let kr_params = KarpRabinParams::generate(31, &mut rng);
    let dl_params = DlExpParams::generate(40, 2, &mut rng);
    let data: Vec<u64> = (0..10_000).map(|_| rng.below(2)).collect();
    let mut group = c.benchmark_group("fingerprint_10k_symbols");
    group.sample_size(20);

    group.bench_function("karp_rabin", |b| {
        b.iter(|| black_box(KarpRabin::fingerprint(kr_params, &data)))
    });

    group.bench_function("dl_exponent", |b| {
        b.iter(|| black_box(wb_crypto::crhf::DlExpHash::hash_symbols(dl_params, &data)))
    });
    group.finish();
}

fn bench_pattern_matching(c: &mut Criterion) {
    let mut rng = TranscriptRng::from_seed(15);
    let params = DlExpParams::generate(40, 4, &mut rng);
    let pattern = vec![0u64, 0, 1, 0, 0, 1]; // period 3
    let text: Vec<u64> = (0..10_000).map(|_| rng.below(2)).collect();
    let mut group = c.benchmark_group("pattern_match_10k_text");
    group.sample_size(15);

    group.bench_function("streaming_alg6", |b| {
        b.iter(|| {
            let mut m = StreamingPatternMatcher::new(&pattern, params);
            for &c in &text {
                m.push(black_box(c));
            }
            black_box(m.matches().len())
        })
    });

    group.bench_function("naive_offline", |b| {
        b.iter(|| black_box(naive_find_all(&pattern, &text).len()))
    });
    group.finish();
}

criterion_group!(benches, bench_fingerprints, bench_pattern_matching);
criterion_main!(benches);
