//! Per-item vs batched ingestion throughput for the sketches with
//! hand-optimized `process_batch` overrides (plus the referee's
//! `FrequencyVector` ground truth). The batched path must be measurably
//! faster on at least one sketch — this bench is the acceptance gauge for
//! the engine's batched-ingestion wiring.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use wb_core::rng::TranscriptRng;
use wb_core::stream::{FrequencyVector, InsertOnly, StreamAlg};
use wb_engine::workload::zipf_stream;
use wb_sketch::count_min::CountMin;
use wb_sketch::{MisraGries, SpaceSaving};

const M: u64 = 1 << 15;
const BATCH: usize = 1 << 10;

fn workload() -> Vec<InsertOnly> {
    zipf_stream(1 << 16, M, 8, 97)
        .into_iter()
        .map(InsertOnly)
        .collect()
}

fn bench_ingestion(c: &mut Criterion) {
    let stream = workload();

    let mut g = c.benchmark_group("count_min_8x1024");
    g.bench_function("per_item", |b| {
        b.iter(|| {
            let mut rng = TranscriptRng::from_seed(1);
            let mut cm = CountMin::new(8, 1024, &mut rng);
            for u in &stream {
                cm.process(u, &mut rng);
            }
            black_box(cm.estimate(0))
        })
    });
    g.bench_function("batched", |b| {
        b.iter(|| {
            let mut rng = TranscriptRng::from_seed(1);
            let mut cm = CountMin::new(8, 1024, &mut rng);
            for chunk in stream.chunks(BATCH) {
                cm.process_batch(chunk, &mut rng);
            }
            black_box(cm.estimate(0))
        })
    });
    g.finish();

    let mut g = c.benchmark_group("misra_gries_eps_1_64");
    g.bench_function("per_item", |b| {
        b.iter(|| {
            let mut rng = TranscriptRng::from_seed(2);
            let mut mg = MisraGries::new(1.0 / 64.0, 1 << 16);
            for u in &stream {
                mg.process(u, &mut rng);
            }
            black_box(mg.entries().len())
        })
    });
    g.bench_function("batched", |b| {
        b.iter(|| {
            let mut rng = TranscriptRng::from_seed(2);
            let mut mg = MisraGries::new(1.0 / 64.0, 1 << 16);
            for chunk in stream.chunks(BATCH) {
                mg.process_batch(chunk, &mut rng);
            }
            black_box(mg.entries().len())
        })
    });
    g.finish();

    let mut g = c.benchmark_group("space_saving_eps_1_64");
    g.bench_function("per_item", |b| {
        b.iter(|| {
            let mut rng = TranscriptRng::from_seed(3);
            let mut ss = SpaceSaving::new(1.0 / 64.0, 1 << 16);
            for u in &stream {
                ss.process(u, &mut rng);
            }
            black_box(ss.entries().len())
        })
    });
    g.bench_function("batched", |b| {
        b.iter(|| {
            let mut rng = TranscriptRng::from_seed(3);
            let mut ss = SpaceSaving::new(1.0 / 64.0, 1 << 16);
            for chunk in stream.chunks(BATCH) {
                ss.process_batch(chunk, &mut rng);
            }
            black_box(ss.entries().len())
        })
    });
    g.finish();

    let mut g = c.benchmark_group("frequency_vector_truth");
    g.bench_function("per_item", |b| {
        b.iter(|| {
            let mut f = FrequencyVector::new();
            for u in &stream {
                f.insert(u.0);
            }
            black_box(f.l1())
        })
    });
    g.bench_function("batched", |b| {
        let items: Vec<u64> = stream.iter().map(|u| u.0).collect();
        b.iter(|| {
            let mut f = FrequencyVector::new();
            for chunk in items.chunks(BATCH) {
                f.insert_batch(chunk);
            }
            black_box(f.l1())
        })
    });
    g.finish();
}

criterion_group!(benches, bench_ingestion);
criterion_main!(benches);
