//! Neighborhood-identification throughput (Theorems 1.3 / 1.4).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use wb_core::rng::TranscriptRng;
use wb_graph::{ExactNeighborhoods, HashedNeighborhoods, OrEqInstance};

fn bench_graph(c: &mut Criterion) {
    let mut rng = TranscriptRng::from_seed(19);
    let inst = OrEqInstance::random(128, 32, &[5], &mut rng);
    let stream = inst.to_vertex_stream();
    let nv = inst.graph_vertices();
    let mut group = c.benchmark_group("neighborhood_oreq_128x32");
    group.sample_size(15);

    group.bench_function("hashed_thm13", |b| {
        b.iter(|| {
            let mut rng2 = TranscriptRng::from_seed(20);
            let mut alg = HashedNeighborhoods::new(nv, &mut rng2);
            for a in &stream {
                alg.insert(black_box(a));
            }
            black_box(alg.identical_groups().len())
        })
    });

    group.bench_function("exact_baseline", |b| {
        b.iter(|| {
            let mut alg = ExactNeighborhoods::new(nv);
            for a in &stream {
                alg.insert(black_box(a));
            }
            black_box(alg.identical_groups().len())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_graph);
criterion_main!(benches);
