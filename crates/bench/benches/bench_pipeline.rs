//! Streaming vs materialized ingestion throughput — the acceptance gauge
//! of the pull-based workload pipeline.
//!
//! Two paths over the identical stream (same spec, same seed, byte-equal
//! updates):
//!
//! * **materialized** — the historical dataflow: `WorkloadSpec::generate()`
//!   allocates the whole `Vec<Update>`, then the algorithm ingests it
//!   slice-chunk by slice-chunk;
//! * **streamed** — `WorkloadSpec::stream()` pulls chunks into one reused
//!   buffer (O(chunk) memory), ingesting as it generates.
//!
//! Chunked streaming must be at least as fast as materializing: it does
//! the same generation and ingestion work without the big allocation, the
//! second pass over memory, or the cache misses of a multi-MB script.
//!
//! Besides the criterion groups, the bench's `main` measures both paths
//! directly and writes `BENCH_pipeline.json` (repo root when invoked via
//! `cargo bench`) — the committed perf-trajectory artifact CI checks.

use criterion::{black_box, criterion_group, Criterion};
use std::time::Instant;
use wb_core::rng::TranscriptRng;
use wb_engine::registry::{self, Params};
use wb_engine::workload::UpdateSource;
use wb_engine::{Update, WorkloadSpec};

const CHUNK: usize = 4096;

fn spec(kind: &str, n: u64, m: u64) -> WorkloadSpec {
    match kind {
        "uniform" => WorkloadSpec::Uniform { n, m, seed: 97 },
        "cycle" => WorkloadSpec::Cycle { items: 8, m },
        other => panic!("unknown bench workload {other}"),
    }
}

/// Materialized path: generate the whole stream, then ingest it in chunks.
fn ingest_materialized(alg_name: &str, params: &Params, spec: &WorkloadSpec) -> u64 {
    let mut alg = registry::get(alg_name, params).expect("registry");
    let mut rng = TranscriptRng::from_seed(1);
    let script = spec.generate();
    for chunk in script.chunks(CHUNK) {
        alg.process_batch_dyn(chunk, &mut rng).expect("model");
    }
    alg.space_bits_dyn()
}

/// Streamed path: pull chunks into one reused buffer, ingesting lazily.
fn ingest_streamed(alg_name: &str, params: &Params, spec: &WorkloadSpec) -> u64 {
    let mut alg = registry::get(alg_name, params).expect("registry");
    let mut rng = TranscriptRng::from_seed(1);
    let mut source = spec.stream();
    let mut buf: Vec<Update> = Vec::with_capacity(CHUNK);
    while source.next_chunk(&mut buf) > 0 {
        alg.process_batch_dyn(&buf, &mut rng).expect("model");
    }
    alg.space_bits_dyn()
}

fn bench_pipeline(c: &mut Criterion) {
    let params = Params::default().with_n(1 << 12);
    let m = 1u64 << 18;
    for workload in ["uniform", "cycle"] {
        for alg in ["misra_gries", "count_min"] {
            let spec = spec(workload, params.n, m);
            let mut g = c.benchmark_group(&format!("pipeline_{workload}_{alg}"));
            g.bench_function("materialized", |b| {
                b.iter(|| black_box(ingest_materialized(alg, &params, &spec)))
            });
            g.bench_function("streamed", |b| {
                b.iter(|| black_box(ingest_streamed(alg, &params, &spec)))
            });
            g.finish();
        }
    }
}

criterion_group!(benches, bench_pipeline);

/// Median-of-`trials` wall time of `f`, in seconds.
fn measure(trials: usize, mut f: impl FnMut() -> u64) -> f64 {
    let mut times: Vec<f64> = (0..trials)
        .map(|_| {
            let start = Instant::now();
            black_box(f());
            start.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    times[times.len() / 2]
}

fn main() {
    benches();

    // The committed perf artifact: million-updates-per-second for both
    // paths, per (workload, algorithm) cell.
    let params = Params::default().with_n(1 << 12);
    let m = 1u64 << 20;
    let trials = 5;
    let mut rows = Vec::new();
    for workload in ["uniform", "cycle"] {
        for alg in ["misra_gries", "count_min"] {
            let s = spec(workload, params.n, m);
            let mat = measure(trials, || ingest_materialized(alg, &params, &s));
            let str_ = measure(trials, || ingest_streamed(alg, &params, &s));
            let mups = |secs: f64| m as f64 / secs / 1e6;
            rows.push(format!(
                concat!(
                    r#"{{"workload":"{}","alg":"{}","materialized_mups":{:.1},"#,
                    r#""streamed_mups":{:.1},"speedup":{:.3}}}"#
                ),
                workload,
                alg,
                mups(mat),
                mups(str_),
                mat / str_,
            ));
        }
    }
    let json = format!(
        "{{\"bench\":\"pipeline\",\"m\":{m},\"chunk\":{CHUNK},\"trials\":{trials},\"results\":[\n  {}\n]}}\n",
        rows.join(",\n  ")
    );
    // Write at the workspace root (benches run with the package as CWD).
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pipeline.json");
    std::fs::write(path, &json).expect("write BENCH_pipeline.json");
    println!("\nBENCH_pipeline.json:\n{json}");
}
