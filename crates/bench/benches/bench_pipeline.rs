//! Streaming vs materialized ingestion throughput — the acceptance gauge
//! of the pull-based workload pipeline and the source of the committed
//! perf trajectory.
//!
//! Two paths over the identical stream (same spec, same seed, byte-equal
//! updates):
//!
//! * **materialized** — the historical dataflow: `WorkloadSpec::generate()`
//!   allocates the whole `Vec<Update>`, then the algorithm ingests it
//!   slice-chunk by slice-chunk;
//! * **streamed** — `WorkloadSpec::stream()` pulls chunks into one reused
//!   buffer (O(chunk) memory), ingesting as it generates.
//!
//! Chunked streaming must be at least as fast as materializing: it does
//! the same generation and ingestion work without the big allocation, the
//! second pass over memory, or the cache misses of a multi-MB script.
//!
//! Besides the criterion groups, the bench's `main` measures both paths
//! directly and **appends a dated snapshot** to `BENCH_pipeline.json`
//! (repo root when invoked via `cargo bench`). The file is a JSON array of
//! snapshots — one per perf PR — so the committed artifact is a
//! trajectory, not a single point; CI's no-regression gate compares the
//! freshest run cell by cell against the best of the last three
//! committed snapshots.

use criterion::{black_box, criterion_group, Criterion};
use std::time::Instant;
use wb_core::rng::TranscriptRng;
use wb_engine::registry::{self, Params};
use wb_engine::workload::UpdateSource;
use wb_engine::{Update, WorkloadSpec};

const CHUNK: usize = 4096;

/// The benched (workload, algorithm, log₂ m) cells — the **full registry**:
/// every algorithm appears on its fastest compatible workload (cycle for
/// the insert-only randomized sketches, churn for the turnstile ones), the
/// zipf × {misra_gries, count_min, space_saving} headline covers the
/// sampler rewrite, and the original nine cells keep their exact shape so
/// the committed trajectory stays comparable. `m` varies per cell — the
/// gauge is Mups, which normalizes by length — so the constant-factor-heavy
/// algorithms (9 RNG words per update for `robust_hh`, a Pedersen digest
/// per sampled update for `phi_eps_hh`) don't dominate wall-clock.
const MATRIX: &[(&str, &str, u32)] = &[
    ("uniform", "misra_gries", 20),
    ("uniform", "count_min", 20),
    ("cycle", "misra_gries", 20),
    ("cycle", "count_min", 20),
    ("cycle", "morris", 20),
    ("cycle", "median_morris", 20),
    ("cycle", "bern_mg", 20),
    ("cycle", "bernoulli_hh", 20),
    ("cycle", "robust_hh", 18),
    ("cycle", "phi_eps_hh", 15),
    ("zipf", "misra_gries", 20),
    ("zipf", "count_min", 20),
    ("zipf", "space_saving", 20),
    ("ddos", "misra_gries", 20),
    ("ddos", "count_min", 20),
    ("churn", "ams_f2", 20),
    ("churn", "exact_l0", 20),
    ("churn", "sis_l0", 20),
];

fn spec(kind: &str, n: u64, m: u64) -> WorkloadSpec {
    match kind {
        "uniform" => WorkloadSpec::Uniform { n, m, seed: 97 },
        "cycle" => WorkloadSpec::Cycle { items: 8, m },
        "zipf" => WorkloadSpec::Zipf {
            n,
            m,
            heavy: 64,
            seed: 97,
        },
        "ddos" => WorkloadSpec::Ddos { m, seed: 97 },
        // waves × (wave + wave/2) updates ≈ m.
        "churn" => WorkloadSpec::Churn {
            n,
            waves: m / 6144,
            wave: 4096,
            seed: 97,
        },
        other => panic!("unknown bench workload {other}"),
    }
}

/// Materialized path: generate the whole stream, then ingest it in chunks.
fn ingest_materialized(alg_name: &str, params: &Params, spec: &WorkloadSpec) -> u64 {
    let mut alg = registry::get(alg_name, params).expect("registry");
    let mut rng = TranscriptRng::from_seed(1);
    let script = spec.generate();
    for chunk in script.chunks(CHUNK) {
        alg.process_batch_dyn(chunk, &mut rng).expect("model");
    }
    alg.space_bits_dyn()
}

/// Streamed path: pull chunks into one reused buffer, ingesting lazily.
fn ingest_streamed(alg_name: &str, params: &Params, spec: &WorkloadSpec) -> u64 {
    let mut alg = registry::get(alg_name, params).expect("registry");
    let mut rng = TranscriptRng::from_seed(1);
    let mut source = spec.stream();
    let mut buf: Vec<Update> = Vec::with_capacity(CHUNK);
    while source.next_chunk(&mut buf) > 0 {
        alg.process_batch_dyn(&buf, &mut rng).expect("model");
    }
    alg.space_bits_dyn()
}

fn bench_pipeline(c: &mut Criterion) {
    let params = Params::default().with_n(1 << 12);
    for &(workload, alg, m_shift) in MATRIX {
        let m = 1u64 << m_shift.min(18);
        let spec = spec(workload, params.n, m);
        let mut g = c.benchmark_group(&format!("pipeline_{workload}_{alg}"));
        g.bench_function("materialized", |b| {
            b.iter(|| black_box(ingest_materialized(alg, &params, &spec)))
        });
        g.bench_function("streamed", |b| {
            b.iter(|| black_box(ingest_streamed(alg, &params, &spec)))
        });
        g.finish();
    }
}

criterion_group!(benches, bench_pipeline);

/// Fastest-of-`trials` wall time of `f`, in seconds. Minimum, not
/// median: on shared runners interference (scheduler preemption,
/// hypervisor steal) is strictly additive, so the fastest trial is the
/// least-contaminated estimate of the code's own cost and the most
/// stable statistic across runs — medians were observed swinging ±20%
/// run to run on otherwise idle cloud hardware.
fn measure(trials: usize, mut f: impl FnMut() -> u64) -> f64 {
    (0..trials)
        .map(|_| {
            let start = Instant::now();
            black_box(f());
            start.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

/// Today's UTC date as `YYYY-MM-DD`, from the system clock via the
/// days-to-civil algorithm (no date dependency in the workspace).
fn today_utc() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .expect("clock after epoch")
        .as_secs();
    let days = (secs / 86_400) as i64;
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146_096) / 365;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = yoe + era * 400 + i64::from(m <= 2);
    format!("{y:04}-{m:02}-{d:02}")
}

fn main() {
    benches();

    // The committed perf artifact: million-updates-per-second for both
    // paths, per (workload, algorithm) cell, appended as a dated snapshot
    // to the trajectory array.
    let params = Params::default().with_n(1 << 12);
    let trials = 7;
    let mut rows = Vec::new();
    for &(workload, alg, m_shift) in MATRIX {
        let s = spec(workload, params.n, 1u64 << m_shift);
        // Actual emitted length (churn rounds m down to whole waves).
        let len = s.stream().len_hint().expect("generators know their length");
        let mat = measure(trials, || ingest_materialized(alg, &params, &s));
        let str_ = measure(trials, || ingest_streamed(alg, &params, &s));
        let mups = |secs: f64| len as f64 / secs / 1e6;
        rows.push(format!(
            concat!(
                r#"{{"workload":"{}","alg":"{}","m":{},"materialized_mups":{:.1},"#,
                r#""streamed_mups":{:.1},"speedup":{:.3}}}"#
            ),
            workload,
            alg,
            len,
            mups(mat),
            mups(str_),
            mat / str_,
        ));
    }
    let snapshot = format!(
        "{{\"date\":\"{}\",\"bench\":\"pipeline\",\"chunk\":{CHUNK},\"trials\":{trials},\"results\":[\n  {}\n]}}",
        today_utc(),
        rows.join(",\n  ")
    );
    // Append to the trajectory at the workspace root (benches run with the
    // package as CWD). A legacy single-object file becomes the array's
    // first point.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pipeline.json");
    let existing = std::fs::read_to_string(path).unwrap_or_default();
    let trimmed = existing.trim();
    let json = if trimmed.is_empty() {
        format!("[\n{snapshot}\n]\n")
    } else if let Some(body) = trimmed.strip_prefix('[').and_then(|t| t.strip_suffix(']')) {
        format!("[\n{},\n{snapshot}\n]\n", body.trim())
    } else {
        format!("[\n{trimmed},\n{snapshot}\n]\n")
    };
    std::fs::write(path, &json).expect("write BENCH_pipeline.json");
    println!("\nBENCH_pipeline.json:\n{json}");
}
