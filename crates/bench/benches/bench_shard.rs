//! Sharded vs single-stream ingestion throughput — the acceptance gauge
//! for the `wb_engine::shard` scale-out path. Measures one logical stream
//! ingested (a) single-stream through `process_batch_dyn`, (b) partitioned
//! across 4 shard instances on 1 worker (pure partition+merge overhead),
//! and (c) the same 4 shards on 4 workers. The (b)→(c) gap is the
//! multi-core win and only appears with >1 physical core — on a 1-core
//! host (b) and (c) coincide and both read as the sharding overhead that
//! real parallel hardware has to amortize.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use wb_core::rng::TranscriptRng;
use wb_engine::registry::{self, Params};
use wb_engine::shard::{ingest_sharded, Partition, ShardConfig};
use wb_engine::workload::zipf_stream;
use wb_engine::Update;

const M: u64 = 1 << 18;
const BATCH: usize = 1 << 10;

fn workload(n: u64) -> Vec<Update> {
    zipf_stream(n, M, 8, 97)
        .into_iter()
        .map(Update::Insert)
        .collect()
}

fn bench_sharded_ingestion(c: &mut Criterion) {
    let params = Params::default().with_n(1 << 12);
    let stream = workload(params.n);

    for alg in ["count_min", "misra_gries", "space_saving"] {
        let mut g = c.benchmark_group(&format!("shard_{alg}"));
        g.bench_function("single_stream", |b| {
            b.iter(|| {
                let mut a = registry::get(alg, &params).unwrap();
                let mut rng = TranscriptRng::from_seed(1);
                for chunk in stream.chunks(BATCH) {
                    a.process_batch_dyn(chunk, &mut rng).unwrap();
                }
                black_box(a.query_dyn())
            })
        });
        for threads in [1usize, 4] {
            g.bench_function(&format!("shards_4_threads_{threads}"), |b| {
                b.iter(|| {
                    let cfg = ShardConfig {
                        shards: 4,
                        partition: Partition::Hash,
                        threads,
                        batch: BATCH,
                        master_seed: 1,
                    };
                    let out =
                        ingest_sharded(&|_| registry::get(alg, &params), &stream, &cfg).unwrap();
                    black_box(out.merged.query_dyn())
                })
            });
        }
        g.finish();
    }
}

criterion_group!(benches, bench_sharded_ingestion);
criterion_main!(benches);
