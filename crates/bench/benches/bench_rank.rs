//! Rank-decision sketch throughput (Theorem 1.6).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use wb_core::rng::TranscriptRng;
use wb_linalg::{EntryUpdate, ExactRankDecision, RankDecisionSketch};

fn updates(n: usize, seed: u64) -> Vec<EntryUpdate> {
    let mut rng = TranscriptRng::from_seed(seed);
    (0..2000)
        .map(|_| EntryUpdate {
            row: rng.below(n as u64) as usize,
            col: rng.below(n as u64) as usize,
            delta: rng.below(9) as i64 - 4,
        })
        .collect()
}

fn bench_rank(c: &mut Criterion) {
    let n = 64;
    let us = updates(n, 16);
    let mut group = c.benchmark_group("rank_2k_updates_n64");
    group.sample_size(15);

    group.bench_function("sketch_k4_update", |b| {
        b.iter(|| {
            let mut sk = RankDecisionSketch::new(n, 4, b"bench");
            for u in &us {
                sk.update(black_box(*u));
            }
            black_box(sk.sketch().get(0, 0))
        })
    });

    group.bench_function("exact_update", |b| {
        b.iter(|| {
            let mut ex = ExactRankDecision::new(n, 4);
            for u in &us {
                ex.update(black_box(*u));
            }
            black_box(ex.rank_at_least_k())
        })
    });
    group.finish();

    // Query (Gaussian elimination) cost.
    let mut sk = RankDecisionSketch::new(n, 8, b"benchq");
    for u in &us {
        sk.update(*u);
    }
    c.bench_function("rank_query_k8_n64", |b| {
        b.iter(|| black_box(sk.rank_at_least_k()))
    });
}

criterion_group!(benches, bench_rank);
criterion_main!(benches);
