//! Morris counter increment throughput (Lemma 2.1).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use wb_core::rng::TranscriptRng;
use wb_sketch::{MedianMorris, MorrisCounter};

fn bench_morris(c: &mut Criterion) {
    let mut group = c.benchmark_group("morris_100k_increments");
    group.sample_size(20);

    group.bench_function("single", |b| {
        b.iter(|| {
            let mut rng = TranscriptRng::from_seed(7);
            let mut m = MorrisCounter::with_base(0.05);
            for _ in 0..100_000u64 {
                m.increment(&mut rng);
            }
            black_box(m.estimate())
        })
    });

    group.bench_function("median_of_9", |b| {
        b.iter(|| {
            let mut rng = TranscriptRng::from_seed(8);
            let mut m = MedianMorris::new(0.2, 9);
            for _ in 0..100_000u64 {
                m.increment(&mut rng);
            }
            black_box(m.estimate())
        })
    });

    group.bench_function("exact_u64_reference", |b| {
        b.iter(|| {
            let mut count = 0u64;
            for i in 0..100_000u64 {
                count += black_box(i) & 1 | 1;
            }
            black_box(count)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_morris);
criterion_main!(benches);
