//! Primitive costs: SHA-256, modular exponentiation, Pedersen hashing,
//! SIS column application.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use wb_core::rng::TranscriptRng;
use wb_crypto::crhf::PedersenMd;
use wb_crypto::modular::pow_mod;
use wb_crypto::oracle::RandomOracle;
use wb_crypto::sha256::sha256;
use wb_crypto::sis::{SisMatrix, SisParams};

fn bench_primitives(c: &mut Criterion) {
    c.bench_function("sha256_1kb", |b| {
        let data = vec![0xABu8; 1024];
        b.iter(|| black_box(sha256(black_box(&data))))
    });

    c.bench_function("pow_mod_61bit", |b| {
        let p = (1u64 << 61) - 1;
        b.iter(|| black_box(pow_mod(black_box(123456789), black_box(p - 2), p)))
    });

    c.bench_function("pedersen_md_8words", |b| {
        let mut rng = TranscriptRng::from_seed(17);
        let md = PedersenMd::generate(40, &mut rng);
        let words = [1u64, 2, 3, 4, 5, 6, 7, 8];
        b.iter(|| black_box(md.hash_words(black_box(&words))))
    });

    c.bench_function("oracle_zq_column_d16", |b| {
        let o = RandomOracle::new(b"bench");
        b.iter(|| black_box(o.zq_column(black_box(3), 16, 1_000_003)))
    });

    c.bench_function("sis_add_scaled_column", |b| {
        let params = SisParams {
            d: 16,
            w: 64,
            q: 1_000_003,
            beta_inf: 100,
        };
        let mut rng = TranscriptRng::from_seed(18);
        let m = SisMatrix::random_explicit(params, &mut rng);
        let mut acc = vec![0u64; 16];
        b.iter(|| {
            m.add_scaled_column(black_box(7), black_box(3), &mut acc);
            black_box(acc[0])
        })
    });
}

criterion_group!(benches, bench_primitives);
criterion_main!(benches);
