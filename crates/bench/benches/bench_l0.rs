//! Throughput for L0 estimation (Theorem 1.5): oracle vs explicit matrix
//! vs the exact baseline, on turnstile churn.

use bench::churn_stream;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use wb_core::rng::TranscriptRng;
use wb_sketch::l0::{ExactL0, MatrixMode, SisL0Estimator};

fn bench_l0(c: &mut Criterion) {
    let n = 1u64 << 12;
    let stream = churn_stream(n, 8, 256, 13);
    let mut group = c.benchmark_group("l0_update_3k");
    group.sample_size(15);

    group.bench_function("sis_random_oracle", |b| {
        b.iter(|| {
            let mut rng = TranscriptRng::from_seed(5);
            let mut alg = SisL0Estimator::new(n, 0.5, 0.25, MatrixMode::RandomOracle, &mut rng);
            for u in &stream {
                alg.update(black_box(u.item), u.delta);
            }
            black_box(alg.answer())
        })
    });

    group.bench_function("sis_explicit", |b| {
        b.iter(|| {
            let mut rng = TranscriptRng::from_seed(6);
            let mut alg = SisL0Estimator::new(n, 0.5, 0.25, MatrixMode::Explicit, &mut rng);
            for u in &stream {
                alg.update(black_box(u.item), u.delta);
            }
            black_box(alg.answer())
        })
    });

    group.bench_function("exact_baseline", |b| {
        b.iter(|| {
            let mut alg = ExactL0::new(n);
            for u in &stream {
                alg.update(black_box(u.item), u.delta);
            }
            black_box(alg.l0())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_l0);
criterion_main!(benches);
