//! Update throughput and query latency for the heavy-hitters algorithms
//! (Theorem 1.1 / 2.2 / 1.2).

use bench::zipf_stream;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use wb_core::rng::TranscriptRng;
use wb_sketch::{MisraGries, PhiEpsHeavyHitters, RobustL1HeavyHitters};

fn bench_updates(c: &mut Criterion) {
    let n = 1u64 << 16;
    let stream = zipf_stream(n, 1 << 14, 8, 7);
    let mut group = c.benchmark_group("hh_update_16k");
    group.sample_size(20);

    group.bench_function("misra_gries", |b| {
        b.iter(|| {
            let mut mg = MisraGries::new(0.125, n);
            for &item in &stream {
                mg.insert(black_box(item));
            }
            black_box(mg.entries().len())
        })
    });

    group.bench_function("robust_hh_alg2", |b| {
        b.iter(|| {
            let mut rng = TranscriptRng::from_seed(1);
            let mut alg = RobustL1HeavyHitters::new(n, 0.125);
            for &item in &stream {
                alg.insert(black_box(item), &mut rng);
            }
            black_box(alg.heavy_hitters().len())
        })
    });

    group.bench_function("phi_eps_hh_thm12", |b| {
        b.iter(|| {
            let mut rng = TranscriptRng::from_seed(2);
            let mut alg = PhiEpsHeavyHitters::new(1 << 40, 0.25, 0.125, 1 << 12, &mut rng);
            for &item in &stream {
                alg.insert(black_box(item), &mut rng);
            }
            black_box(alg.report().len())
        })
    });
    group.finish();
}

fn bench_query(c: &mut Criterion) {
    let n = 1u64 << 16;
    let stream = zipf_stream(n, 1 << 14, 8, 9);
    let mut rng = TranscriptRng::from_seed(3);
    let mut alg = RobustL1HeavyHitters::new(n, 0.125);
    for &item in &stream {
        alg.insert(item, &mut rng);
    }
    c.bench_function("hh_query_robust", |b| {
        b.iter(|| black_box(alg.heavy_hitters()))
    });
}

criterion_group!(benches, bench_updates, bench_query);
criterion_main!(benches);
