//! Throughput for hierarchical heavy hitters (Theorems 2.11 / 2.14).

use bench::ddos_stream;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use wb_core::rng::TranscriptRng;
use wb_sketch::hhh::{HierarchicalSpaceSaving, RadixHierarchy, RobustHHH};

fn bench_hhh(c: &mut Criterion) {
    let stream = ddos_stream(1 << 14, 11);
    let h = RadixHierarchy::ipv4();
    let mut group = c.benchmark_group("hhh_update_16k");
    group.sample_size(15);

    group.bench_function("tms12_deterministic", |b| {
        b.iter(|| {
            let mut alg = HierarchicalSpaceSaving::new(h, 0.05, 0.2);
            for &ip in &stream {
                alg.insert(black_box(ip));
            }
            black_box(alg.solve(0.2).len())
        })
    });

    group.bench_function("robust_alg4", |b| {
        b.iter(|| {
            let mut rng = TranscriptRng::from_seed(4);
            let mut alg = RobustHHH::new(h, 0.05, 0.2);
            for &ip in &stream {
                alg.insert(black_box(ip), &mut rng);
            }
            black_box(alg.solve().len())
        })
    });
    group.finish();
}

fn bench_hhh_query(c: &mut Criterion) {
    let stream = ddos_stream(1 << 14, 12);
    let h = RadixHierarchy::ipv4();
    let mut alg = HierarchicalSpaceSaving::new(h, 0.05, 0.2);
    for &ip in &stream {
        alg.insert(ip);
    }
    c.bench_function("hhh_solve", |b| b.iter(|| black_box(alg.solve(0.2))));
}

criterion_group!(benches, bench_hhh, bench_hhh_query);
criterion_main!(benches);
