//! `exp_sharded` — merged-vs-single-stream accuracy of sharded ingestion.
//!
//! For every mergeable registry algorithm, the same workload is ingested
//! once as a single stream and once partitioned across `S ∈ {2, 4, 8}`
//! shard instances (both partition rules), then merged in the engine's
//! deterministic reduction tree. The table reports the answer drift
//! between the merged and single-stream states (zero for the linear
//! sketches, within the merge error bound for the counter summaries) and
//! whether the merged answer still satisfies the algorithm's referee
//! guarantee, plus the routing spread (max per-shard load and skew =
//! max/mean) from the pipeline's [`wb_engine::shard::ShardStats`]. All
//! cells are deterministic — throughput lives in the `bench_shard`
//! criterion bench, not here — so the JSON report stays byte-identical
//! across runs and thread counts; the scheduling-dependent queue-stall
//! counters from the same stats are printed to stderr instead of the
//! report.

use wb_core::rng::TranscriptRng;
use wb_engine::experiment::{run_cli, ExperimentSpec, Row, RunnerConfig, Section};
use wb_engine::registry::{self, Params};
use wb_engine::shard::{ingest_sharded_source, Partition, ShardConfig};
use wb_engine::{Answer, RefereeSpec, Update, WorkloadSpec};

/// Mergeable registry algorithms and the referee guarding each one's
/// guarantee (mirrors `wb_engine::tournament::referee_for`).
fn mergeable_algs(p: &Params) -> Vec<(&'static str, RefereeSpec)> {
    vec![
        (
            "misra_gries",
            RefereeSpec::HeavyHitters {
                eps: p.eps,
                tol: p.eps,
                phi: None,
                grace: 64,
            },
        ),
        (
            "space_saving",
            RefereeSpec::HeavyHitters {
                eps: p.eps,
                tol: p.eps,
                phi: None,
                grace: 64,
            },
        ),
        ("count_min", RefereeSpec::Accept),
        ("ams_f2", RefereeSpec::Accept),
        ("exact_l0", RefereeSpec::L0Sandwich { factor: 1.0 }),
    ]
}

/// Largest pointwise answer difference between two erased answers.
fn answer_drift(merged: &Answer, single: &Answer) -> f64 {
    match (merged, single) {
        (Answer::Items(a), Answer::Items(b)) => {
            let est = |list: &[(u64, f64)], item: u64| {
                list.iter()
                    .find(|&&(i, _)| i == item)
                    .map_or(0.0, |&(_, e)| e)
            };
            a.iter()
                .chain(b.iter())
                .map(|&(item, _)| (est(a, item) - est(b, item)).abs())
                .fold(0.0, f64::max)
        }
        _ => (merged.as_scalar().unwrap_or(0.0) - single.as_scalar().unwrap_or(0.0)).abs(),
    }
}

fn main() {
    let params = Params::default().with_n(1 << 10).with_eps(0.125);
    let mut section = Section::new(
        "zipf workload; drift = max |merged estimate - single-stream estimate|; \
         ok = referee verdict on the merged answer",
        &["alg x shards", "partition", "drift", "ok", "loads", "skew"],
        16,
    );
    for (alg, referee) in mergeable_algs(&params) {
        for shards in [2usize, 4, 8] {
            for partition in [Partition::Hash, Partition::RoundRobin] {
                let params = params.clone();
                let referee = referee.clone();
                section = section.row(Row::custom(format!("{alg} x{shards}"), move |ctx| {
                    let m = ctx.cap(1 << 15, RunnerConfig::QUICK_CAP);
                    let spec = WorkloadSpec::Zipf {
                        n: params.n,
                        m,
                        heavy: 8,
                        seed: 1789,
                    };
                    // Ground truth (single-stream state + referee) needs the
                    // materialized stream; the sharded path streams the same
                    // spec through the chunk-queue pipeline.
                    let updates: Vec<Update> = spec.generate();
                    let ctor = |_: usize| registry::get(alg, &params);
                    let cfg = ShardConfig {
                        shards,
                        partition,
                        threads: 0,
                        batch: 512,
                        master_seed: 97,
                    };
                    let mut single = registry::get(alg, &params).expect("registry");
                    let mut rng = TranscriptRng::from_seed(cfg.shard_seed(0));
                    for chunk in updates.chunks(cfg.batch) {
                        single.process_batch_dyn(chunk, &mut rng).expect("model");
                    }
                    let out = ingest_sharded_source(&ctor, &mut spec.stream(), &cfg)
                        .expect("sharded ingest");
                    let merged_answer = out.merged.query_dyn();
                    let drift = answer_drift(&merged_answer, &single.query_dyn());
                    let mut ref_ = referee.build();
                    ref_.observe_batch(&updates);
                    let ok = ref_.check(m, &merged_answer).is_correct();
                    // Queue stalls are real backpressure data but depend on
                    // scheduling, so they go to stderr as diagnostics — the
                    // report itself stays byte-identical across runs.
                    if out.stats.total_stalls() > 0 {
                        eprintln!(
                            "[backpressure] {alg} x{shards} {}: {} producer stalls {:?}",
                            partition.label(),
                            out.stats.total_stalls(),
                            out.stats.queue_stalls,
                        );
                    }
                    vec![
                        partition.label().to_string(),
                        format!("{drift:.1}"),
                        ok.to_string(),
                        format!("max {}", out.stats.max_load()),
                        format!("{:.2}", out.stats.skew()),
                    ]
                }));
            }
        }
    }
    run_cli(
        ExperimentSpec::new(
            "sharded",
            "sharded ingestion: merged vs single-stream accuracy (throughput: bench_shard)",
        )
        .section(section)
        .note(
            "linear sketches (count_min, ams_f2, exact_l0) must show drift 0.0 — their merge\n\
             is exact; counter summaries drift within the mergeable-summaries error bound\n\
             and must still pass their referee. The white-box adversary sees every shard.",
        ),
    );
}
