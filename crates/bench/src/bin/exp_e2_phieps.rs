//! E2 (Theorem 1.2): `(φ,ε)`-heavy hitters with CRHF-compressed ids.
//!
//! Claim shape: the per-counter identifier cost drops from `log n` to
//! `hash_bits ≈ max(2 log T, collision floor)`; full ids are kept only for
//! the `O(1/φ)` reported candidates. No item below `(φ−ε)L1` is ever
//! reported (checked against exact ground truth).

use bench::{header, row, zipf_stream};
use wb_core::rng::TranscriptRng;
use wb_core::space::SpaceUsage;
use wb_core::stream::FrequencyVector;
use wb_sketch::{PhiEpsHeavyHitters, RobustL1HeavyHitters};

fn main() {
    let n = 1u64 << 62; // wide universe: full ids are 62 bits
    let m = 1u64 << 15;
    let (phi, eps) = (0.20, 0.125);
    println!("E2: n = 2^62, m = 2^15, phi = {phi}, eps = {eps}\n");
    header(
        &[
            "T budget",
            "hash bits",
            "space bits",
            "false pos",
            "covered",
        ],
        12,
    );
    for log_t in [8u32, 12, 16, 19] {
        let t_budget = 1u64 << log_t;
        let mut rng = TranscriptRng::from_seed(500 + log_t as u64);
        let mut alg = PhiEpsHeavyHitters::new(n, phi, eps, t_budget, &mut rng);
        let stream = zipf_stream(n, m, 4, 77);
        let mut truth = FrequencyVector::new();
        for &item in &stream {
            alg.insert(item, &mut rng);
            truth.insert(item);
        }
        let l1 = truth.l1() as f64;
        let report = alg.report();
        let false_pos = report
            .iter()
            .filter(|&&(i, _)| (truth.get(i) as f64) < (phi - eps) * l1)
            .count();
        let covered = truth
            .items_above(phi * l1)
            .iter()
            .all(|&i| report.iter().any(|&(j, _)| j == i));
        println!(
            "{}",
            row(
                &[
                    format!("2^{log_t}"),
                    alg.hash_bits().to_string(),
                    alg.space_bits().to_string(),
                    false_pos.to_string(),
                    covered.to_string(),
                ],
                12
            )
        );
    }
    // Reference: Algorithm 2 stores full 40-bit ids per counter.
    let mut rng = TranscriptRng::from_seed(600);
    let mut plain = RobustL1HeavyHitters::new(n, eps);
    for &item in &zipf_stream(n, m, 4, 77) {
        plain.insert(item, &mut rng);
    }
    println!(
        "\nreference (Thm 1.1 algorithm, full ids): {} bits — the hash-compressed\n\
         dictionary trades id bits for 2·log T digest bits (Thm 1.2).",
        plain.space_bits()
    );
}
