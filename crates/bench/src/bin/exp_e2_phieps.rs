//! E2 (Theorem 1.2): `(φ,ε)`-heavy hitters with CRHF-compressed ids.
//!
//! Claim shape: the per-counter identifier cost drops from `log n` to
//! `hash_bits ≈ max(2 log T, collision floor)`; full ids are kept only for
//! the `O(1/φ)` reported candidates. Correctness ("ok") is the real
//! `(φ, ε)` referee verdict — every `φ`-heavy item reported, nothing below
//! `(φ−ε)·L1` reported — checked round by round in an engine-driven game.

use bench::zipf_stream;
use wb_core::referee::HeavyHitterReferee;
use wb_core::rng::TranscriptRng;
use wb_core::space::SpaceUsage;
use wb_core::stream::InsertOnly;
use wb_engine::experiment::{run_cli, ExperimentSpec, Row, RunCtx, Section};
use wb_engine::Game;
use wb_sketch::{PhiEpsHeavyHitters, RobustL1HeavyHitters};

const N: u64 = 1 << 62; // wide universe: full ids are 62 bits
const M: u64 = 1 << 15;
const PHI: f64 = 0.20;
const EPS: f64 = 0.125;

fn script(m: u64) -> Vec<InsertOnly> {
    zipf_stream(N, m, 4, 77)
        .into_iter()
        .map(InsertOnly)
        .collect()
}

fn phi_eps_row(log_t: u32) -> Row {
    Row::custom(format!("2^{log_t}"), move |ctx: &RunCtx| {
        let m = ctx.cap(M, 1 << 11);
        let mut ctor_rng = TranscriptRng::from_seed(500 + log_t as u64);
        let alg = PhiEpsHeavyHitters::new(N, PHI, EPS, 1u64 << log_t, &mut ctor_rng);
        let hash_bits = alg.hash_bits();
        let (report, alg) = Game::new(alg)
            .script(script(m))
            .referee(
                HeavyHitterReferee::new(PHI, 0.1)
                    .with_phi(PHI)
                    .with_grace(256),
            )
            .batch(128)
            .seed(500 + log_t as u64)
            .play();
        vec![
            hash_bits.to_string(),
            alg.space_bits().to_string(),
            alg.report().len().to_string(),
            report.survived().to_string(),
        ]
    })
}

fn main() {
    let mut section = Section::new(
        format!("n = 2^62, m = 2^15, phi = {PHI}, eps = {EPS}; ok = (phi,eps) referee verdict"),
        &["T budget", "hash bits", "space bits", "reported", "ok"],
        12,
    );
    for log_t in [8u32, 12, 16, 19] {
        section = section.row(phi_eps_row(log_t));
    }
    // Reference: the Thm 1.1 algorithm stores full 62-bit ids per counter.
    let reference = Row::custom("full ids", |ctx: &RunCtx| {
        let m = ctx.cap(M, 1 << 11);
        let (_, plain) = Game::new(RobustL1HeavyHitters::new(N, EPS))
            .script(script(m))
            .batch(128)
            .seed(600)
            .play();
        vec![
            "-".into(),
            plain.space_bits().to_string(),
            plain.heavy_hitters().len().to_string(),
            "-".into(),
        ]
    });
    run_cli(
        ExperimentSpec::new("e2", "CRHF-compressed (phi,eps)-heavy hitters")
            .section(section.row(reference))
            .note(
                "the hash-compressed dictionary trades full id bits for 2·log T digest\n\
                 bits (Thm 1.2); the 'full ids' row is the Thm 1.1 reference instance.",
            ),
    );
}
