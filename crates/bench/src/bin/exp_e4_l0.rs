//! E4 (Theorem 1.5 / Algorithm 5): SIS-based L0 estimation on turnstile
//! streams.
//!
//! Claim shape: the answer sandwiches the true L0 within factor `n^ε` at
//! every point (enforced by the real
//! [`L0SandwichReferee`](wb_core::referee::L0SandwichReferee) at every
//! batch boundary); random-oracle mode drops the `n^{(1+c)ε}`
//! matrix-storage term; the naive small-modulus variant is broken by a
//! poly-time adversary while the SIS instance resists the same budget.

use wb_core::rng::TranscriptRng;
use wb_core::stream::FrequencyVector;
use wb_engine::experiment::{run_cli, ExperimentSpec, GameRow, Metric, Row, RunCtx, Section};
use wb_engine::registry::Params;
use wb_engine::{RefereeSpec, WorkloadSpec};
use wb_sketch::l0::{
    attack_sis_estimator, break_naive_sketch, MatrixMode, NaiveModSketchL0, SisAttackOutcome,
    SisL0Estimator,
};

const L0_EPS: f64 = 0.5;
const L0_C: f64 = 0.25;

fn sandwich_row(log_n: u32, random_oracle: bool) -> Row {
    let n = 1u64 << log_n;
    let mode = if random_oracle { "RO" } else { "expl" };
    Row::game(
        GameRow::new(
            format!("2^{log_n} {mode}"),
            "sis_l0",
            Params {
                n,
                l0_eps: L0_EPS,
                l0_c: L0_C,
                random_oracle,
                seed: 40 + log_n as u64,
                ..Params::default()
            },
            WorkloadSpec::Churn {
                n,
                waves: 8,
                wave: n / 8,
                seed: 41 + log_n as u64,
            },
            RefereeSpec::L0Sandwich {
                // The estimator's actual guarantee factor is its chunk width
                // ⌈n^ε⌉ — ceil to match, or non-integral n^ε would flag
                // sound answers at the boundary.
                factor: (n as f64).powf(L0_EPS).ceil(),
            },
        )
        .seed(42 + log_n as u64)
        .batch(64)
        .metrics(&[
            Metric::Rounds,
            Metric::Answer,
            Metric::SpaceBits,
            Metric::Ok,
        ]),
    )
}

fn main() {
    let mut section = Section::new(
        format!(
            "eps = {L0_EPS}, c = {L0_C}, turnstile churn; ok = L0SandwichReferee(n^eps) verdict"
        ),
        &["n / mode", "rounds", "answer", "space bits", "ok"],
        12,
    );
    for log_n in [8u32, 10, 12, 14] {
        section = section.row(sandwich_row(log_n, true));
        section = section.row(sandwich_row(log_n, false));
    }

    let attacks = Section::new(
        "attacks (budget 30000 candidates per phase)",
        &["target", "outcome"],
        30,
    )
    .row(Row::custom("naive q=2 sketch", |_ctx: &RunCtx| {
        let mut rng = TranscriptRng::from_seed(60);
        let mut naive = NaiveModSketchL0::new(1 << 10, 64, 8, 2, &mut rng);
        let attack = break_naive_sketch(&naive).expect("GF(2) kernel");
        let mut truth = FrequencyVector::new();
        truth.update_batch(&attack.iter().map(|u| (u.item, u.delta)).collect::<Vec<_>>());
        for u in &attack {
            naive.update(u.item, u.delta);
        }
        vec![format!(
            "BROKEN: answer {} vs L0 {}",
            naive.answer(),
            truth.l0()
        )]
    }))
    .row(Row::custom("SIS sketch (Thm 1.5)", |ctx: &RunCtx| {
        let mut rng = TranscriptRng::from_seed(61);
        let victim = SisL0Estimator::new(1 << 12, 0.5, 0.4, MatrixMode::RandomOracle, &mut rng);
        let budget = ctx.cap(30_000, 2_000);
        let outcome = attack_sis_estimator(&victim, budget, &mut rng);
        vec![match outcome {
            SisAttackOutcome::Broken(_) => "BROKEN (unexpected!)".to_string(),
            SisAttackOutcome::Resisted {
                unbounded_kernel_max_entry,
                ..
            } => format!(
                "resisted; mod-q kernel entry {} >> beta {}",
                unbounded_kernel_max_entry.unwrap_or(0),
                victim.matrix().params().beta_inf
            ),
        }]
    }));

    run_cli(
        ExperimentSpec::new("e4", "SIS-based turnstile L0 estimation")
            .section(section)
            .section(attacks)
            .note(
                "RO rows store no matrix (the n^((1+c)eps) term vanishes); expl rows pay\n\
                 for explicit matrix storage. The naive q=2 sketch falls to a GF(2)\n\
                 kernel attack; the SIS instance resists the same candidate budget.",
            ),
    );
}
