//! E4 (Theorem 1.5 / Algorithm 5): SIS-based L0 estimation on turnstile
//! streams.
//!
//! Claim shape: the answer sandwiches the true L0 within factor `n^ε` at
//! every point; random-oracle mode drops the `n^{(1+c)ε}` matrix-storage
//! term; the naive small-modulus variant is broken by a poly-time
//! adversary while the SIS instance resists the same budget.

use bench::{churn_stream, header, row};
use wb_core::rng::TranscriptRng;
use wb_core::space::SpaceUsage;
use wb_core::stream::FrequencyVector;
use wb_sketch::l0::{
    attack_sis_estimator, break_naive_sketch, MatrixMode, NaiveModSketchL0, SisAttackOutcome,
    SisL0Estimator,
};

fn main() {
    println!("E4: eps = 1/2, c = 1/4, turnstile churn streams\n");
    header(
        &[
            "n",
            "true L0",
            "answer",
            "n^eps",
            "RO bits",
            "expl bits",
            "ok",
        ],
        10,
    );
    for log_n in [8u32, 10, 12, 14] {
        let n = 1u64 << log_n;
        let mut rng = TranscriptRng::from_seed(40 + log_n as u64);
        let mut ro = SisL0Estimator::new(n, 0.5, 0.25, MatrixMode::RandomOracle, &mut rng);
        let mut explicit = SisL0Estimator::new(n, 0.5, 0.25, MatrixMode::Explicit, &mut rng);
        let mut truth = FrequencyVector::new();
        let mut ok = true;
        for u in churn_stream(n, 8, n / 8, 41 + log_n as u64) {
            ro.update(u.item, u.delta);
            explicit.update(u.item, u.delta);
            truth.update(u.item, u.delta);
            let (lo, hi) = ro.answer_range();
            ok &= lo <= truth.l0() && truth.l0() <= hi;
        }
        println!(
            "{}",
            row(
                &[
                    format!("2^{log_n}"),
                    truth.l0().to_string(),
                    ro.answer().to_string(),
                    ro.approximation_factor().to_string(),
                    ro.space_bits().to_string(),
                    explicit.space_bits().to_string(),
                    ok.to_string(),
                ],
                10
            )
        );
    }

    // Attack table.
    println!("\nattacks (budget 30000 candidates per phase):");
    header(&["target", "outcome"], 28);
    let mut rng = TranscriptRng::from_seed(60);
    let mut naive = NaiveModSketchL0::new(1 << 10, 64, 8, 2, &mut rng);
    let attack = break_naive_sketch(&naive).expect("GF(2) kernel");
    let mut t = FrequencyVector::new();
    for u in &attack {
        naive.update(u.item, u.delta);
        t.update(u.item, u.delta);
    }
    println!(
        "{}",
        row(
            &[
                "naive q=2 sketch".into(),
                format!("BROKEN: answer {} vs L0 {}", naive.answer(), t.l0()),
            ],
            28
        )
    );
    let victim = SisL0Estimator::new(1 << 12, 0.5, 0.4, MatrixMode::RandomOracle, &mut rng);
    let outcome = attack_sis_estimator(&victim, 30_000, &mut rng);
    let desc = match outcome {
        SisAttackOutcome::Broken(_) => "BROKEN (unexpected!)".to_string(),
        SisAttackOutcome::Resisted {
            unbounded_kernel_max_entry,
            ..
        } => format!(
            "resisted; mod-q kernel entry {} >> beta {}",
            unbounded_kernel_max_entry.unwrap_or(0),
            victim.matrix().params().beta_inf
        ),
    };
    println!("{}", row(&["SIS sketch (Thm 1.5)".into(), desc], 28));
}
