//! E5 (Theorem 1.3 vs Theorem 1.4): neighborhood identification space.
//!
//! Claim shape: the CRHF-hashed algorithm uses `O(n log n)` bits and the
//! deterministic baseline `Θ(n²)` — the curves cross immediately and
//! diverge; both decode the OR-Equality instances that prove the
//! Ω(n²/log n) bound. Decoding is enforced by a final-round referee in an
//! engine-driven game over the vertex-arrival stream.

use wb_core::game::{FnReferee, Verdict};
use wb_core::rng::TranscriptRng;
use wb_core::space::SpaceUsage;
use wb_core::stream::StreamAlg;
use wb_engine::experiment::{run_cli, ExperimentSpec, Row, RunCtx, Section};
use wb_engine::Game;
use wb_graph::{ExactNeighborhoods, HashedNeighborhoods, NeighborhoodGroups, OrEqInstance};

/// Drive one algorithm over the instance's vertex stream; the referee
/// demands that the final identical-neighborhood groups decode to the
/// planted OR-Equality answer.
fn decode_game<A>(alg: A, inst: &OrEqInstance, seed: u64) -> (bool, u64)
where
    A: StreamAlg<Update = wb_graph::VertexArrival, Output = NeighborhoodGroups>
        + SpaceUsage
        + 'static,
{
    let stream = inst.to_vertex_stream();
    let m = stream.len() as u64;
    let check = {
        let inst = inst.clone();
        FnReferee::new(move |t: u64, out: &NeighborhoodGroups| {
            if t < m {
                return Verdict::Correct;
            }
            if inst.decode(out) == inst.truth() {
                Verdict::Correct
            } else {
                Verdict::violation(format!("round {t}: OR-Equality decode mismatch"))
            }
        })
    };
    let (report, alg) = Game::new(alg)
        .script(stream)
        .referee(check)
        .batch(64)
        .seed(seed)
        .play();
    (report.survived(), alg.space_bits())
}

fn main() {
    let mut section = Section::new(
        "OR-Equality reduction graphs (one planted equal pair)",
        &[
            "n(bits)/k",
            "vertices",
            "hashed bits",
            "exact bits",
            "ratio",
            "ok",
        ],
        11,
    );
    for &(n, k) in &[
        (32usize, 8usize),
        (64, 16),
        (128, 32),
        (256, 64),
        (512, 128),
    ] {
        section = section.row(Row::custom(format!("{n}/{k}"), move |ctx: &RunCtx| {
            let (n, k) = if ctx.quick && n > 128 {
                (128, 32)
            } else {
                (n, k)
            };
            let mut rng = TranscriptRng::from_seed((n * 31 + k) as u64);
            let inst = OrEqInstance::random(n, k, &[k / 2], &mut rng);
            let nv = inst.graph_vertices();
            let (hashed_ok, hashed_bits) =
                decode_game(HashedNeighborhoods::new(nv, &mut rng), &inst, 1);
            let (exact_ok, exact_bits) = decode_game(ExactNeighborhoods::new(nv), &inst, 2);
            let ratio = exact_bits as f64 / hashed_bits as f64;
            vec![
                nv.to_string(),
                hashed_bits.to_string(),
                exact_bits.to_string(),
                format!("{ratio:.2}"),
                (hashed_ok && exact_ok).to_string(),
            ]
        }));
    }
    run_cli(
        ExperimentSpec::new("e5", "vertex-arrival neighborhood identification")
            .section(section)
            .note(
                "shape check: the exact/hashed ratio grows linearly in n — the\n\
                 Θ(n²) vs O(n log n) separation of Theorems 1.4 vs 1.3. ok is the\n\
                 final-round referee verdict that both algorithms decode the instance.",
            ),
    );
}
