//! E5 (Theorem 1.3 vs Theorem 1.4): neighborhood identification space.
//!
//! Claim shape: the CRHF-hashed algorithm uses `O(n log n)` bits and the
//! deterministic baseline `Θ(n²)` — the curves cross immediately and
//! diverge; both decode the OR-Equality instances that prove the Ω(n²/log n)
//! bound.

use bench::{header, row};
use wb_core::rng::TranscriptRng;
use wb_core::space::SpaceUsage;
use wb_graph::{ExactNeighborhoods, HashedNeighborhoods, OrEqInstance};

fn main() {
    println!("E5: OR-Equality reduction graphs (one planted equal pair)\n");
    header(
        &[
            "n(bits)",
            "k",
            "vertices",
            "hashed bits",
            "exact bits",
            "ratio",
            "ok",
        ],
        11,
    );
    for &(n, k) in &[
        (32usize, 8usize),
        (64, 16),
        (128, 32),
        (256, 64),
        (512, 128),
    ] {
        let mut rng = TranscriptRng::from_seed((n * 31 + k) as u64);
        let inst = OrEqInstance::random(n, k, &[k / 2], &mut rng);
        let nv = inst.graph_vertices();
        let mut hashed = HashedNeighborhoods::new(nv, &mut rng);
        let mut exact = ExactNeighborhoods::new(nv);
        for a in inst.to_vertex_stream() {
            hashed.insert(&a);
            exact.insert(&a);
        }
        let ok = inst.decode(&hashed.identical_groups()) == inst.truth()
            && inst.decode(&exact.identical_groups()) == inst.truth();
        let ratio = exact.space_bits() as f64 / hashed.space_bits() as f64;
        println!(
            "{}",
            row(
                &[
                    n.to_string(),
                    k.to_string(),
                    nv.to_string(),
                    hashed.space_bits().to_string(),
                    exact.space_bits().to_string(),
                    format!("{ratio:.2}"),
                    ok.to_string(),
                ],
                11
            )
        );
    }
    println!(
        "\nshape check: the exact/hashed ratio grows linearly in n — the\n\
         Θ(n²) vs O(n log n) separation of Theorems 1.4 vs 1.3."
    );
}
