//! `tournament` — play every registered algorithm against every adversary
//! on every workload, in parallel, with bit-reproducible reports.
//!
//! ```text
//! tournament [--threads N] [--shards S] [--prelude-m M] [--chunk C]
//!            [--quick] [--seed S] [--json <path|->] [--cells]
//!            [--resume PATH] [--checkpoint-every N]
//!            [--alg KEY]... [--adversary KEY]... [--workload KEY]...
//! ```
//!
//! * `--threads N` — worker threads (default: one per core). Reports are
//!   byte-identical for every `N`.
//! * `--shards S` — partition each cell's workload prelude across `S`
//!   shard instances and merge them in a deterministic reduction tree
//!   (mergeable algorithms only; the rest keep flat ingestion). Reports
//!   stay byte-identical across thread counts for any fixed `S`.
//! * `--prelude-m M` — length of each cell's oblivious prelude
//!   (underscores allowed: `10_000_000`). The prelude is *streamed* in
//!   `--chunk`-sized pulls, so memory stays O(threads × chunk) no matter
//!   how large `M` is. Overrides the `--quick` prelude when both are
//!   given.
//! * `--chunk C` — prelude chunk size (default 4096). Pure transport: the
//!   report is byte-identical for every `C`.
//! * `--quick` — smoke-scale cell sizes (CI mode); the cross-product stays
//!   full.
//! * `--seed S` — master seed; each cell's tapes derive from
//!   `(S, alg, adversary, workload, role)` and can be replayed alone.
//! * `--json <path|->` — write the sorted JSON-lines report (timing-free).
//! * `--cells` — print every cell, not just the per-algorithm summary.
//! * `--resume PATH` — checkpoint file. Completed cells found in the file
//!   are reused; in-flight cells continue from their latest mid-prelude
//!   frame; progress is persisted back to PATH (atomic tmp+rename) as
//!   cells finish. A killed run restarted with the same flags produces a
//!   report byte-identical to an uninterrupted one.
//! * `--checkpoint-every N` — also capture a mid-prelude frame every `N`
//!   prelude updates per cell (flat ingestion only), so even a single
//!   giant cell survives a kill without restarting its prelude. Requires
//!   `--resume`. Frames are chunk-invariant: `--chunk` never changes them.
//! * `--alg/--adversary/--workload` — restrict a dimension (repeatable).

use std::io::Write as _;
use wb_engine::registry;
use wb_engine::tournament::{
    run_tournament, run_tournament_checkpointed, CheckpointConfig, TournamentConfig, WORKLOADS,
};

fn main() {
    let mut quick = false;
    let mut show_cells = false;
    let mut json: Option<String> = None;
    let mut threads = 0usize;
    let mut shards = 1usize;
    let mut prelude_m: Option<u64> = None;
    let mut chunk: Option<usize> = None;
    let mut seed = 42u64;
    let mut resume: Option<String> = None;
    let mut checkpoint_every = 0u64;
    let mut algs: Vec<String> = Vec::new();
    let mut adversaries: Vec<String> = Vec::new();
    let mut workloads: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            // Refuse a following flag as the value: `--json --quick` must
            // error, not swallow `--quick` as the path.
            match args.next() {
                Some(v) if !v.starts_with("--") => v,
                _ => {
                    eprintln!("{flag} needs a value");
                    std::process::exit(2);
                }
            }
        };
        match arg.as_str() {
            "--quick" => quick = true,
            "--cells" => show_cells = true,
            "--json" => json = Some(value("--json")),
            "--threads" => threads = parse(&value("--threads"), "--threads"),
            "--shards" => {
                shards = parse(&value("--shards"), "--shards");
                if shards == 0 {
                    eprintln!("--shards must be >= 1");
                    std::process::exit(2);
                }
            }
            "--prelude-m" => prelude_m = Some(parse(&value("--prelude-m"), "--prelude-m")),
            "--chunk" => {
                chunk = Some(parse(&value("--chunk"), "--chunk"));
                if chunk == Some(0) {
                    eprintln!("--chunk must be >= 1");
                    std::process::exit(2);
                }
            }
            "--seed" => seed = parse(&value("--seed"), "--seed"),
            "--resume" => resume = Some(value("--resume")),
            "--checkpoint-every" => {
                checkpoint_every = parse(&value("--checkpoint-every"), "--checkpoint-every");
            }
            "--alg" => algs.push(value("--alg")),
            "--adversary" => adversaries.push(value("--adversary")),
            "--workload" => workloads.push(value("--workload")),
            other => {
                eprintln!(
                    "unknown flag '{other}' (known: --quick, --cells, --json, --threads, \
                     --shards, --prelude-m, --chunk, --seed, --resume, --checkpoint-every, \
                     --alg, --adversary, --workload)"
                );
                std::process::exit(2);
            }
        }
    }

    let mut cfg = TournamentConfig::default();
    if quick {
        cfg = cfg.quick();
    }
    cfg.master_seed = seed;
    cfg.threads = threads;
    cfg.shards = shards;
    if let Some(m) = prelude_m {
        cfg.prelude_m = m; // after quick(): an explicit -m wins
    }
    if let Some(c) = chunk {
        cfg.batch = c;
    }
    if !algs.is_empty() {
        validate(&algs, &registry::names(), "algorithm");
        cfg.algs = algs;
    }
    if !adversaries.is_empty() {
        validate(&adversaries, &registry::adversary_names(), "adversary");
        cfg.adversaries = adversaries;
    }
    if !workloads.is_empty() {
        validate(&workloads, WORKLOADS, "workload");
        cfg.workloads = workloads;
    }
    if checkpoint_every > 0 && resume.is_none() {
        eprintln!("--checkpoint-every requires --resume PATH (the checkpoint file)");
        std::process::exit(2);
    }

    println!(
        "tournament: {} algorithms x {} adversaries x {} workloads = {} cells, \
         prelude m = {} streamed in chunks of {}, master seed {}{}{}",
        cfg.algs.len(),
        cfg.adversaries.len(),
        cfg.workloads.len(),
        cfg.cell_count(),
        cfg.prelude_m,
        cfg.batch,
        cfg.master_seed,
        if cfg.shards > 1 {
            format!("  [sharded prelude: {} shards]", cfg.shards)
        } else {
            String::new()
        },
        if quick { "  [--quick]" } else { "" },
    );

    // Cell panics are caught by run_cell and reported as error cells; quiet
    // the default hook so worker backtraces don't interleave with tables.
    // (Binary-only: the library never touches process-global panic state.)
    std::panic::set_hook(Box::new(|_| {}));
    let report = match &resume {
        Some(path) => {
            let ckpt = CheckpointConfig {
                path: path.into(),
                every: checkpoint_every,
            };
            match run_tournament_checkpointed(&cfg, &ckpt) {
                Ok(report) => report,
                Err(e) => {
                    let _ = std::panic::take_hook();
                    eprintln!("could not resume from {path}: {e}");
                    std::process::exit(1);
                }
            }
        }
        None => run_tournament(&cfg),
    };
    let _ = std::panic::take_hook();
    report.print_summary();
    if show_cells {
        report.print_cells();
    } else {
        let failures = report.failures();
        if !failures.is_empty() {
            println!("\nviolations and errors ({}):", failures.len());
            for c in failures {
                println!(
                    "  {} vs {} on {} [{}] round {}: {}",
                    c.alg,
                    c.adversary,
                    c.workload,
                    c.verdict.label(),
                    c.rounds,
                    c.detail
                );
            }
        }
    }
    println!(
        "\n{} cells in {} ms on {} thread{} (per-cell seeds derive from master seed {})",
        report.cells.len(),
        report.wall_millis,
        report.threads,
        if report.threads == 1 { "" } else { "s" },
        report.master_seed,
    );

    if let Some(path) = json {
        let lines = report.json_lines();
        if path == "-" {
            let mut out = std::io::stdout();
            for line in &lines {
                let _ = writeln!(out, "{line}");
            }
        } else if let Err(e) = std::fs::write(&path, lines.join("\n") + "\n") {
            eprintln!("could not write JSON report to {path}: {e}");
            std::process::exit(1);
        }
    }
}

fn parse<T: std::str::FromStr>(value: &str, flag: &str) -> T {
    // Underscore separators are allowed: `--prelude-m 10_000_000`.
    value.replace('_', "").parse().unwrap_or_else(|_| {
        eprintln!("{flag}: could not parse '{value}'");
        std::process::exit(2);
    })
}

fn validate(chosen: &[String], known: &[&str], what: &str) {
    for key in chosen {
        if !known.contains(&key.as_str()) {
            eprintln!("unknown {what} '{key}' (known: {})", known.join(", "));
            std::process::exit(2);
        }
    }
}
