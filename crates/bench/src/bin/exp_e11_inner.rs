//! E11 (Corollary 2.8): sampled inner-product estimation.
//!
//! Claim shape: the absolute error stays below `ε·‖f‖₁·‖g‖₁` across
//! correlated, anti-correlated and disjoint stream pairs, with space
//! `O(1/ε²)` samples.

use bench::{header, row};
use std::collections::HashMap;
use wb_core::rng::TranscriptRng;
use wb_core::space::SpaceUsage;
use wb_sketch::inner_product::{SampledInnerProduct, Side, SideUpdate};

fn exact_ip(f: &[u64], g: &[u64]) -> f64 {
    let mut cf: HashMap<u64, u64> = HashMap::new();
    let mut cg: HashMap<u64, u64> = HashMap::new();
    for &i in f {
        *cf.entry(i).or_insert(0) += 1;
    }
    for &i in g {
        *cg.entry(i).or_insert(0) += 1;
    }
    cf.iter()
        .filter_map(|(k, &a)| cg.get(k).map(|&b| (a * b) as f64))
        .sum()
}

fn main() {
    let m = 30_000u64;
    println!("E11: m = {m} per stream, error bound = eps * L1(f) * L1(g)\n");
    header(
        &[
            "workload",
            "eps",
            "truth",
            "estimate",
            "err/bound",
            "space bits",
        ],
        12,
    );
    for eps in [0.05f64, 0.1, 0.2] {
        for (name, fgen, ggen) in [
            (
                "correlated",
                (|t: u64| t % 20) as fn(u64) -> u64,
                (|t: u64| (t * 3) % 20) as fn(u64) -> u64,
            ),
            ("identical", |t: u64| t % 50, |t: u64| t % 50),
            ("disjoint", |t: u64| t % 100, |t: u64| 1000 + t % 100),
        ] {
            let f: Vec<u64> = (0..m).map(fgen).collect();
            let g: Vec<u64> = (0..m).map(ggen).collect();
            let mut rng = TranscriptRng::from_seed(1100 + (eps * 100.0) as u64);
            let mut est = SampledInnerProduct::new(1 << 20, eps, m, m);
            for t in 0..m as usize {
                est.update(
                    SideUpdate {
                        side: Side::Left,
                        item: f[t],
                    },
                    &mut rng,
                );
                est.update(
                    SideUpdate {
                        side: Side::Right,
                        item: g[t],
                    },
                    &mut rng,
                );
            }
            let truth = exact_ip(&f, &g);
            let bound = eps * (m as f64) * (m as f64);
            let err = (est.estimate() - truth).abs();
            println!(
                "{}",
                row(
                    &[
                        name.to_string(),
                        format!("{eps}"),
                        format!("{truth:.2e}"),
                        format!("{:.2e}", est.estimate()),
                        format!("{:.3}", err / bound),
                        est.space_bits().to_string(),
                    ],
                    12
                )
            );
        }
    }
    println!("\nerr/bound must stay below 1.0 (Lemma 2.6's guarantee holds with prob ≥ 0.99).");
}
