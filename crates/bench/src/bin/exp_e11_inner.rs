//! E11 (Corollary 2.8): sampled inner-product estimation.
//!
//! Claim shape: the absolute error stays below `ε·‖f‖₁·‖g‖₁` across
//! correlated, identical and disjoint stream pairs, with space `O(1/ε²)`
//! samples. The interleaved two-sided stream runs through the engine; a
//! final-round referee enforces the error bound, so "ok" is a game
//! verdict.

use std::collections::HashMap;
use wb_core::game::{FnReferee, Verdict};
use wb_core::space::SpaceUsage;
use wb_engine::experiment::{run_cli, ExperimentSpec, Row, RunCtx, Section};
use wb_engine::Game;
use wb_sketch::inner_product::{SampledInnerProduct, Side, SideUpdate};

fn exact_ip(f: &[u64], g: &[u64]) -> f64 {
    let mut cf: HashMap<u64, u64> = HashMap::new();
    let mut cg: HashMap<u64, u64> = HashMap::new();
    for &i in f {
        *cf.entry(i).or_insert(0) += 1;
    }
    for &i in g {
        *cg.entry(i).or_insert(0) += 1;
    }
    cf.iter()
        .filter_map(|(k, &a)| cg.get(k).map(|&b| (a * b) as f64))
        .sum()
}

fn ip_row(name: &'static str, eps: f64, fgen: fn(u64) -> u64, ggen: fn(u64) -> u64) -> Row {
    Row::custom(format!("{name} {eps}"), move |ctx: &RunCtx| {
        let m = ctx.cap(30_000, 2_000);
        let f: Vec<u64> = (0..m).map(fgen).collect();
        let g: Vec<u64> = (0..m).map(ggen).collect();
        let truth = exact_ip(&f, &g);
        let bound = eps * (m as f64) * (m as f64);
        // Interleave the two sides into one update script.
        let script: Vec<SideUpdate> = (0..m as usize)
            .flat_map(|t| {
                [
                    SideUpdate {
                        side: Side::Left,
                        item: f[t],
                    },
                    SideUpdate {
                        side: Side::Right,
                        item: g[t],
                    },
                ]
            })
            .collect();
        let total = script.len() as u64;
        let referee = FnReferee::new(move |t: u64, est: &f64| {
            if t >= total && (est - truth).abs() > bound {
                Verdict::violation(format!(
                    "round {t}: |{est:.2e} - {truth:.2e}| exceeds eps bound {bound:.2e}"
                ))
            } else {
                Verdict::Correct
            }
        });
        let (report, alg) = Game::new(SampledInnerProduct::new(1 << 20, eps, m, m))
            .script(script)
            .referee(referee)
            .batch(256)
            .seed(1100 + (eps * 100.0) as u64)
            .play();
        let err = (alg.estimate() - truth).abs();
        vec![
            format!("{truth:.2e}"),
            format!("{:.2e}", alg.estimate()),
            format!("{:.3}", err / bound),
            alg.space_bits().to_string(),
            report.survived().to_string(),
        ]
    })
}

fn main() {
    let mut section = Section::new(
        "m = 30000 per stream, error bound = eps * L1(f) * L1(g); ok = final-round referee",
        &[
            "workload eps",
            "truth",
            "estimate",
            "err/bound",
            "space bits",
            "ok",
        ],
        13,
    );
    for eps in [0.05f64, 0.1, 0.2] {
        section = section.row(ip_row("correlated", eps, |t| t % 20, |t| (t * 3) % 20));
        section = section.row(ip_row("identical", eps, |t| t % 50, |t| t % 50));
        section = section.row(ip_row("disjoint", eps, |t| t % 100, |t| 1000 + t % 100));
    }
    run_cli(
        ExperimentSpec::new("e11", "sampled inner-product estimation")
            .section(section)
            .note("err/bound must stay below 1.0 (Lemma 2.6's guarantee holds with prob ≥ 0.99)."),
    );
}
