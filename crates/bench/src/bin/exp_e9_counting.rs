//! E9 (Theorem 1.11, Lemmas 3.5–3.10): deterministic counting with a timer.
//!
//! Claim shape: the certified width bound grows as `n^{1/3}` for
//! `(1+δ)`-multiplicative counting (so Ω(log n) bits); every sub-bound
//! deterministic candidate fails with an explicit counterexample; Morris
//! counters (Lemma 2.1) beat the bound with randomness.

use bench::{header, row};
use wb_core::rng::TranscriptRng;
use wb_core::space::SpaceUsage;
use wb_lowerbounds::{
    interval_family, verify_counter, width_lower_bound, BucketCounter, ErrorBudget, ExactCounter,
    SaturatingCounter,
};
use wb_sketch::MedianMorris;

fn main() {
    println!("E9a: certified width lower bound (ε(k) = 0.5k ⇒ h = Θ(n^(1/3)))\n");
    header(&["n", "bound h+1", "bits", "n^(1/3)"], 12);
    for log_n in [8u32, 12, 16, 20, 24] {
        let n = 1u64 << log_n;
        let (_, bound) = width_lower_bound(n, ErrorBudget::Multiplicative(0.5));
        println!(
            "{}",
            row(
                &[
                    format!("2^{log_n}"),
                    bound.to_string(),
                    format!("{:.1}", (bound as f64).log2()),
                    format!("{:.0}", (n as f64).powf(1.0 / 3.0)),
                ],
                12
            )
        );
    }

    println!("\nE9b: verifier verdicts at n = 96, eps = 0.5\n");
    header(&["candidate", "verdict"], 30);
    let verdict_exact = match verify_counter(&ExactCounter, 96, 0.5) {
        Ok(w) => format!("correct (width {})", w.iter().max().unwrap()),
        Err(_) => unreachable!(),
    };
    println!("{}", row(&["exact".into(), verdict_exact], 30));
    for width in [8usize, 16, 32] {
        let v = match verify_counter(&SaturatingCounter { width }, 96, 0.5) {
            Ok(_) => "correct".to_string(),
            Err(c) => format!("FAILS at count {}", c.true_count),
        };
        println!("{}", row(&[format!("saturating({width})"), v], 30));
        let v = match verify_counter(&BucketCounter { delta: 0.5, width }, 96, 0.5) {
            Ok(_) => "correct".to_string(),
            Err(c) => format!("FAILS at count {}", c.true_count),
        };
        println!("{}", row(&[format!("det-Morris({width})"), v], 30));
    }

    println!("\nE9c: Lemma 3.10 interval stretch (det-Morris, 12 buckets, n = 48)");
    let fam = interval_family(
        &BucketCounter {
            delta: 0.5,
            width: 12,
        },
        48,
    );
    let worst = fam[48]
        .iter()
        .map(|iv| (iv.lo, iv.hi))
        .max_by_key(|&(lo, hi)| hi - lo)
        .unwrap();
    println!(
        "  widest achievable-count interval at t = 48: [{}, {}]",
        worst.0, worst.1
    );

    println!("\nE9d: randomized Morris at the same horizons (Lemma 2.1)\n");
    header(&["n", "estimate", "bits"], 12);
    for log_n in [12u32, 16, 20] {
        let n = 1u64 << log_n;
        let mut rng = TranscriptRng::from_seed(log_n as u64);
        let mut m = MedianMorris::new(0.2, 9);
        for _ in 0..n {
            m.increment(&mut rng);
        }
        println!(
            "{}",
            row(
                &[
                    format!("2^{log_n}"),
                    format!("{:.0}", m.estimate()),
                    m.space_bits().to_string(),
                ],
                12
            )
        );
    }
    println!("\nMorris bits grow ~log log n; the deterministic certificate grows ~(1/3)·log n.");
}
