//! E9 (Theorem 1.11, Lemmas 3.5–3.10): deterministic counting with a timer.
//!
//! Claim shape: the certified width bound grows as `n^{1/3}` for
//! `(1+δ)`-multiplicative counting (so Ω(log n) bits); every sub-bound
//! deterministic candidate fails with an explicit counterexample; Morris
//! counters (Lemma 2.1) beat the bound with randomness — the randomized
//! rows run through the engine's registry under a real counting referee.

use wb_engine::experiment::{run_cli, ExperimentSpec, GameRow, Metric, Row, RunCtx, Section};
use wb_engine::registry::Params;
use wb_engine::{RefereeSpec, WorkloadSpec};
use wb_lowerbounds::{
    interval_family, verify_counter, width_lower_bound, BucketCounter, ErrorBudget, ExactCounter,
    SaturatingCounter,
};

fn main() {
    let mut widths = Section::new(
        "E9a: certified width lower bound (eps(k) = 0.5k => h = Θ(n^(1/3)))",
        &["n", "bound h+1", "bits", "n^(1/3)"],
        12,
    );
    for log_n in [8u32, 12, 16, 20, 24] {
        widths = widths.row(Row::custom(format!("2^{log_n}"), move |ctx: &RunCtx| {
            let n = 1u64 << if ctx.quick { log_n.min(16) } else { log_n };
            let (_, bound) = width_lower_bound(n, ErrorBudget::Multiplicative(0.5));
            vec![
                bound.to_string(),
                format!("{:.1}", (bound as f64).log2()),
                format!("{:.0}", (n as f64).powf(1.0 / 3.0)),
            ]
        }));
    }

    let mut verdicts = Section::new(
        "E9b: verifier verdicts at n = 96, eps = 0.5",
        &["candidate", "verdict"],
        30,
    );
    verdicts = verdicts.row(Row::custom("exact", |ctx: &RunCtx| {
        let n = if ctx.quick { 48 } else { 96 };
        vec![match verify_counter(&ExactCounter, n, 0.5) {
            Ok(w) => format!("correct (width {})", w.iter().max().unwrap()),
            Err(_) => unreachable!("the exact counter is always correct"),
        }]
    }));
    for width in [8usize, 16, 32] {
        verdicts = verdicts.row(Row::custom(format!("saturating({width})"), move |ctx| {
            let n = if ctx.quick { 48 } else { 96 };
            vec![match verify_counter(&SaturatingCounter { width }, n, 0.5) {
                Ok(_) => "correct".to_string(),
                Err(c) => format!("FAILS at count {}", c.true_count),
            }]
        }));
        verdicts = verdicts.row(Row::custom(format!("det-Morris({width})"), move |ctx| {
            let n = if ctx.quick { 48 } else { 96 };
            vec![
                match verify_counter(&BucketCounter { delta: 0.5, width }, n, 0.5) {
                    Ok(_) => "correct".to_string(),
                    Err(c) => format!("FAILS at count {}", c.true_count),
                },
            ]
        }));
    }

    let stretch = Section::new(
        "E9c: Lemma 3.10 interval stretch (det-Morris, 12 buckets, n = 48)",
        &["t", "widest interval"],
        24,
    )
    .row(Row::custom("48", |_ctx: &RunCtx| {
        let fam = interval_family(
            &BucketCounter {
                delta: 0.5,
                width: 12,
            },
            48,
        );
        let worst = fam[48]
            .iter()
            .map(|iv| (iv.lo, iv.hi))
            .max_by_key(|&(lo, hi)| hi - lo)
            .unwrap();
        vec![format!("[{}, {}]", worst.0, worst.1)]
    }));

    let mut morris = Section::new(
        "E9d: randomized Morris at the same horizons (Lemma 2.1); ok = ApproxCountReferee(0.5)",
        &["n", "estimate", "space bits", "ok"],
        12,
    );
    for log_n in [12u32, 16, 20] {
        morris = morris.row(Row::game(
            GameRow::new(
                format!("2^{log_n}"),
                "median_morris",
                Params {
                    eps: 0.2,
                    copies: 9,
                    ..Params::default()
                },
                WorkloadSpec::Cycle {
                    items: 1,
                    m: 1 << log_n,
                },
                RefereeSpec::ApproxCount { eps: 0.5 },
            )
            .seed(log_n as u64)
            .batch(1024)
            .metrics(&[Metric::Answer, Metric::SpaceBits, Metric::Ok]),
        ));
    }

    run_cli(
        ExperimentSpec::new(
            "e9",
            "deterministic counting lower bound vs randomized Morris",
        )
        .section(widths)
        .section(verdicts)
        .section(stretch)
        .section(morris)
        .note(
            "Morris bits grow ~log log n; the deterministic certificate grows\n\
                 ~(1/3)·log n. The E9d 'ok' column is a real (1±0.5) counting referee\n\
                 verdict checked throughout the stream.",
        ),
    );
}
