//! E8 (Theorems 1.8, 1.9/3.3, 1.10): white-box attacks force constant-
//! factor Fp errors on o(n)-space sketches, and the derandomization
//! reduction crosses exactly at the deterministic communication bound.

use bench::{header, row};
use wb_core::rng::TranscriptRng;
use wb_lowerbounds::comm::games::{one_way_deterministic_bound, DetGapEquality, Equality};
use wb_lowerbounds::reduction_experiment;
use wb_sketch::ams::{find_aligned_items, AmsF2};
use wb_sketch::count_min::{forge_all_row_collisions, CountMin};

fn main() {
    println!("E8a: AMS F2 inflation forced by a white-box adversary\n");
    header(&["copies", "aligned found", "inflation x"], 14);
    for copies in [3usize, 5, 7, 9, 11] {
        let mut rng = TranscriptRng::from_seed(800 + copies as u64);
        let mut ams = AmsF2::new(copies, &mut rng);
        let aligned = find_aligned_items(&ams, 256, 1 << 17);
        for &i in &aligned {
            ams.update(i, 1);
        }
        let k = aligned.len().max(1) as f64;
        println!(
            "{}",
            row(
                &[
                    copies.to_string(),
                    aligned.len().to_string(),
                    format!("{:.0}", ams.estimate() / k),
                ],
                14
            )
        );
    }
    println!("\n(the attack cost doubles per copy — 2^copies scan — but succeeds for any");
    println!(" constant number of copies: the Ω(n) bound of Thm 1.9 is unavoidable)\n");

    println!("E8b: CountMin all-row collision forging\n");
    header(&["depth", "width", "forged in 300k"], 14);
    for depth in [1usize, 2, 3] {
        let mut rng = TranscriptRng::from_seed(810 + depth as u64);
        let cm = CountMin::new(depth, 64, &mut rng);
        let forged = forge_all_row_collisions(&cm, 0, usize::MAX, 300_000);
        println!(
            "{}",
            row(
                &[depth.to_string(), "64".into(), forged.len().to_string()],
                14
            )
        );
    }

    println!("\nE8c: Theorem 1.8 derandomization crossover (DetGapEQ)\n");
    header(&["n", "det bound", "k", "derandomizable"], 14);
    for n in [8usize, 10] {
        let det = one_way_deterministic_bound(&DetGapEquality { n, gap: 2 });
        for k in [2usize, det as usize - 2, det as usize, det as usize + 2] {
            let r = reduction_experiment(n, k, 2, 48);
            println!(
                "{}",
                row(
                    &[
                        n.to_string(),
                        det.to_string(),
                        k.to_string(),
                        format!("{:.0}%", 100.0 * r.derandomizable_fraction),
                    ],
                    14
                )
            );
        }
    }
    println!(
        "\nplain Equality deterministic bound (n = 6): {} bits — Theorem 3.2's Ω(n).",
        one_way_deterministic_bound(&Equality { n: 6 })
    );
}
