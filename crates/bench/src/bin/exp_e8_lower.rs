//! E8 (Theorems 1.8, 1.9/3.3, 1.10): white-box attacks force constant-
//! factor Fp errors on o(n)-space sketches, and the derandomization
//! reduction crosses exactly at the deterministic communication bound.
//!
//! The AMS and CountMin attack streams are driven through the engine
//! (script games) — the sketch is the algorithm, the forged items are the
//! adversary's stream; the communication-game cells are offline
//! computations declared as custom rows.

use wb_core::rng::TranscriptRng;
use wb_core::stream::Turnstile;
use wb_engine::experiment::{run_cli, ExperimentSpec, Row, RunCtx, Section};
use wb_engine::Game;
use wb_lowerbounds::comm::games::{one_way_deterministic_bound, DetGapEquality, Equality};
use wb_lowerbounds::reduction_experiment;
use wb_sketch::ams::{find_aligned_items, AmsF2};
use wb_sketch::count_min::{forge_all_row_collisions, CountMin};

fn main() {
    let mut ams = Section::new(
        "E8a: AMS F2 inflation forced by a white-box adversary",
        &["copies", "aligned found", "inflation x"],
        14,
    );
    for copies in [3usize, 5, 7, 9, 11] {
        ams = ams.row(Row::custom(copies.to_string(), move |ctx: &RunCtx| {
            let mut rng = TranscriptRng::from_seed(800 + copies as u64);
            let sketch = AmsF2::new(copies, &mut rng);
            let budget = ctx.cap(1 << 17, 1 << 13);
            let aligned = find_aligned_items(&sketch, 256, budget);
            let script: Vec<Turnstile> = aligned.iter().map(|&i| Turnstile::insert(i)).collect();
            let (_, sketch) = Game::new(sketch).script(script).seed(1).play();
            let k = aligned.len().max(1) as f64;
            vec![
                aligned.len().to_string(),
                format!("{:.0}", sketch.estimate() / k),
            ]
        }));
    }

    let mut cm = Section::new(
        "E8b: CountMin all-row collision forging",
        &["depth", "width", "forged in 300k"],
        14,
    );
    for depth in [1usize, 2, 3] {
        cm = cm.row(Row::custom(depth.to_string(), move |ctx: &RunCtx| {
            let mut rng = TranscriptRng::from_seed(810 + depth as u64);
            let sketch = CountMin::new(depth, 64, &mut rng);
            let budget = ctx.cap(300_000, 20_000);
            let forged = forge_all_row_collisions(&sketch, 0, usize::MAX, budget);
            vec!["64".into(), forged.len().to_string()]
        }));
    }

    let mut der = Section::new(
        "E8c: Theorem 1.8 derandomization crossover (DetGapEQ)",
        &["n,k", "det bound", "derandomizable"],
        14,
    );
    for n in [8usize, 10] {
        let det = one_way_deterministic_bound(&DetGapEquality { n, gap: 2 });
        for k in [2usize, det as usize - 2, det as usize, det as usize + 2] {
            der = der.row(Row::custom(format!("{n},{k}"), move |ctx: &RunCtx| {
                let seed_pool = ctx.trials(48, 8);
                let r = reduction_experiment(n, k, 2, seed_pool);
                vec![
                    det.to_string(),
                    format!("{:.0}%", 100.0 * r.derandomizable_fraction),
                ]
            }));
        }
    }

    run_cli(
        ExperimentSpec::new("e8", "Fp attack lower bounds and derandomization")
            .section(ams)
            .section(cm)
            .section(der)
            .note(
                "E8a: the attack cost doubles per copy (2^copies scan) but succeeds for\n\
                 any constant number of copies — the Ω(n) bound of Thm 1.9 is unavoidable.",
            )
            .note(format!(
                "plain Equality deterministic bound (n = 6): {} bits — Theorem 3.2's Ω(n).",
                one_way_deterministic_bound(&Equality { n: 6 })
            )),
    );
}
