//! E12 — ablations of Algorithm 2's design choices (DESIGN.md §5).
//!
//! (a) **Two-guess ladder vs a single fixed guess**: a lone `BernMG`
//!     provisioned for guess `M` over-samples nothing once the true stream
//!     runs 64× past `M` — its sampling rate was tuned for `M`, so its
//!     counters blow past the sample budget and the space advantage
//!     evaporates; the ladder retires instances instead.
//! (b) **Morris-triggered epochs vs an exact `log m`-bit trigger**: the
//!     only job of the Morris counter is crossing detection; swapping in an
//!     exact counter reproduces identical epoch schedules at a `log m` vs
//!     `log log m` price — measured here.

use bench::{header, row};
use wb_core::rng::TranscriptRng;
use wb_core::space::{bits_for_count, SpaceUsage};
use wb_sketch::epochs::GuessLadder;
use wb_sketch::{BernMG, MedianMorris, RobustL1HeavyHitters};

fn main() {
    let n = 1u64 << 14;
    let eps = 0.125;

    println!("E12a: single fixed guess vs the two-guess ladder (eps = {eps})\n");
    header(
        &[
            "m",
            "single bits",
            "ladder bits",
            "single samples",
            "ladder lead",
        ],
        14,
    );
    let guess = 1u64 << 12;
    for log_m in [12u32, 15, 18] {
        let m = 1u64 << log_m;
        let mut rng = TranscriptRng::from_seed(1200 + log_m as u64);
        let mut single = BernMG::new(n, guess, eps, 0.01);
        let mut ladder = RobustL1HeavyHitters::new(n, eps);
        for t in 0..m {
            single.insert(t % 8, &mut rng);
            ladder.insert(t % 8, &mut rng);
        }
        println!(
            "{}",
            row(
                &[
                    format!("2^{log_m}"),
                    single.space_bits().to_string(),
                    ladder.space_bits().to_string(),
                    single.sampled().to_string(),
                    format!("epoch {}", ladder.epoch()),
                ],
                14
            )
        );
    }
    println!(
        "\nthe single instance's sample count (and counter bits) grow linearly once\n\
         the stream passes its guess; the ladder's stay bounded per epoch.\n"
    );

    println!("E12b: epoch trigger — Morris vs exact counter\n");
    header(&["m", "morris bits", "exact bits", "epochs agree"], 14);
    for log_m in [12u32, 16, 20] {
        let m = 1u64 << log_m;
        let mut rng = TranscriptRng::from_seed(1250 + log_m as u64);
        // Morris-triggered ladder (the paper's choice).
        let mut morris = MedianMorris::new(eps / 16.0, 7);
        let mut ladder_m = GuessLadder::new(16.0 / eps, |g| BernMG::new(n, g, eps / 2.0, 0.01));
        // Exact-counter-triggered ladder (the ablation).
        let mut exact_t = 0u64;
        let mut ladder_e = GuessLadder::new(16.0 / eps, |g| BernMG::new(n, g, eps / 2.0, 0.01));
        for t in 0..m {
            morris.increment(&mut rng);
            exact_t += 1;
            for inst in ladder_m.live_mut() {
                inst.insert(t % 8, &mut rng);
            }
            for inst in ladder_e.live_mut() {
                inst.insert(t % 8, &mut rng);
            }
            ladder_m.advance(morris.estimate());
            ladder_e.advance(exact_t as f64);
        }
        let morris_trigger_bits = morris.space_bits();
        let exact_trigger_bits = bits_for_count(exact_t);
        println!(
            "{}",
            row(
                &[
                    format!("2^{log_m}"),
                    morris_trigger_bits.to_string(),
                    exact_trigger_bits.to_string(),
                    (ladder_m.epoch() == ladder_e.epoch()
                        || ladder_m.epoch() + 1 == ladder_e.epoch()
                        || ladder_e.epoch() + 1 == ladder_m.epoch())
                    .to_string(),
                ],
                14
            )
        );
    }
    println!(
        "\nhonest ablation finding: at word scales the 7-copy (1±ε/16) Morris\n\
         trigger costs MORE bits than the exact log m counter — its constant\n\
         (7 copies × log(ln m / a) with a = 2(ε/16)²/8) dominates until m is\n\
         astronomical. The asymptotic Θ(log log m) vs Θ(log m) slopes are\n\
         visible (+~14 vs +~4 bits per 2^4× here is constant-dominated; the\n\
         Morris curve flattens while log m keeps climbing). Epoch schedules\n\
         agree up to ±1 either way — the trigger choice does not affect\n\
         correctness, only the paper's headline space term."
    );
}
