//! E12 — ablations of Algorithm 2's design choices (DESIGN.md §5).
//!
//! (a) **Two-guess ladder vs a single fixed guess**: a lone `BernMG`
//!     provisioned for guess `M` over-samples once the true stream runs
//!     64× past `M` — its counters blow past the sample budget and the
//!     space advantage evaporates; the ladder retires instances instead.
//! (b) **Morris-triggered epochs vs an exact `log m`-bit trigger**: the
//!     only job of the Morris counter is crossing detection; swapping in
//!     an exact counter reproduces near-identical epoch schedules at a
//!     `log m` vs `log log m` price — measured here. The composite
//!     trigger+ladder pairs are wrapped as `StreamAlg`s and driven by the
//!     engine, not by hand-rolled loops.

use wb_core::rng::TranscriptRng;
use wb_core::space::{bits_for_count, SpaceUsage};
use wb_core::stream::{InsertOnly, StreamAlg};
use wb_engine::experiment::{run_cli, ExperimentSpec, Row, RunCtx, Section};
use wb_engine::workload::cycle_stream;
use wb_engine::Game;
use wb_sketch::epochs::GuessLadder;
use wb_sketch::{BernMG, MedianMorris, RobustL1HeavyHitters};

const N: u64 = 1 << 14;
const EPS: f64 = 0.125;

fn script(m: u64) -> Vec<InsertOnly> {
    cycle_stream(8, m).into_iter().map(InsertOnly).collect()
}

fn single_vs_ladder_row(log_m: u32) -> Row {
    Row::custom(format!("2^{log_m}"), move |ctx: &RunCtx| {
        let m = ctx.cap(1 << log_m, 1 << 11);
        let seed = 1200 + log_m as u64;
        let (_, single) = Game::new(BernMG::new(N, 1 << 12, EPS, 0.01))
            .script(script(m))
            .batch(512)
            .seed(seed)
            .play();
        let (_, ladder) = Game::new(RobustL1HeavyHitters::new(N, EPS))
            .script(script(m))
            .batch(512)
            .seed(seed)
            .play();
        vec![
            single.space_bits().to_string(),
            ladder.space_bits().to_string(),
            single.sampled().to_string(),
            format!("epoch {}", ladder.epoch()),
        ]
    })
}

/// Ablation composite: a guess ladder driven by a pluggable length
/// trigger, wrapped as a `StreamAlg` so the engine can drive it.
struct TriggeredLadder<T> {
    trigger: T,
    ladder: GuessLadder<BernMG, Box<dyn Fn(u64) -> BernMG + Send + Sync>>,
}

impl<T> TriggeredLadder<T> {
    fn new(trigger: T) -> Self {
        TriggeredLadder {
            trigger,
            ladder: GuessLadder::new(16.0 / EPS, Box::new(|g| BernMG::new(N, g, EPS / 2.0, 0.01))),
        }
    }
}

/// A stream-length estimator a [`TriggeredLadder`] advances on.
trait Trigger {
    fn bump(&mut self, rng: &mut TranscriptRng);
    fn estimate(&self) -> f64;
    fn bits(&self) -> u64;
}

/// The paper's choice: a median-of-7 Morris counter.
struct MorrisTrigger(MedianMorris);
impl Trigger for MorrisTrigger {
    fn bump(&mut self, rng: &mut TranscriptRng) {
        self.0.increment(rng);
    }
    fn estimate(&self) -> f64 {
        self.0.estimate()
    }
    fn bits(&self) -> u64 {
        self.0.space_bits()
    }
}

/// The ablation: an exact `log m`-bit counter.
struct ExactTrigger(u64);
impl Trigger for ExactTrigger {
    fn bump(&mut self, _rng: &mut TranscriptRng) {
        self.0 += 1;
    }
    fn estimate(&self) -> f64 {
        self.0 as f64
    }
    fn bits(&self) -> u64 {
        bits_for_count(self.0)
    }
}

impl<T: Trigger> StreamAlg for TriggeredLadder<T> {
    type Update = InsertOnly;
    type Output = u32;

    fn process(&mut self, update: &InsertOnly, rng: &mut TranscriptRng) {
        self.trigger.bump(rng);
        for inst in self.ladder.live_mut() {
            inst.insert(update.0, rng);
        }
        self.ladder.advance(self.trigger.estimate());
    }

    /// The fixed query: the current epoch index.
    fn query(&self) -> u32 {
        self.ladder.epoch()
    }
}

impl<T: Trigger> SpaceUsage for TriggeredLadder<T> {
    fn space_bits(&self) -> u64 {
        self.trigger.bits() + self.ladder.space_bits()
    }
}

fn trigger_row(log_m: u32) -> Row {
    Row::custom(format!("2^{log_m}"), move |ctx: &RunCtx| {
        let m = ctx.cap(1 << log_m, 1 << 11);
        let seed = 1250 + log_m as u64;
        let (_, morris) = Game::new(TriggeredLadder::new(MorrisTrigger(MedianMorris::new(
            EPS / 16.0,
            7,
        ))))
        .script(script(m))
        .batch(512)
        .seed(seed)
        .play();
        let (_, exact) = Game::new(TriggeredLadder::new(ExactTrigger(0)))
            .script(script(m))
            .batch(512)
            .seed(seed)
            .play();
        let (em, ee) = (morris.query(), exact.query());
        vec![
            morris.trigger.bits().to_string(),
            exact.trigger.bits().to_string(),
            (em.abs_diff(ee) <= 1).to_string(),
        ]
    })
}

fn main() {
    let mut single = Section::new(
        format!("E12a: single fixed guess (2^12) vs the two-guess ladder (eps = {EPS})"),
        &[
            "m",
            "single bits",
            "ladder bits",
            "single samples",
            "ladder lead",
        ],
        14,
    );
    for log_m in [12u32, 15, 18] {
        single = single.row(single_vs_ladder_row(log_m));
    }

    let mut trigger = Section::new(
        "E12b: epoch trigger — Morris vs exact counter",
        &["m", "morris bits", "exact bits", "epochs agree"],
        14,
    );
    for log_m in [12u32, 16, 20] {
        trigger = trigger.row(trigger_row(log_m));
    }

    run_cli(
        ExperimentSpec::new("e12", "Algorithm 2 design ablations")
            .section(single)
            .section(trigger)
            .note(
                "E12a: the single instance's sample count (and counter bits) grow\n\
                 linearly once the stream passes its guess; the ladder's stay bounded\n\
                 per epoch.",
            )
            .note(
                "E12b honest ablation finding: at word scales the 7-copy (1±ε/16)\n\
                 Morris trigger costs MORE bits than the exact log m counter — its\n\
                 constant dominates until m is astronomical; the asymptotic slopes\n\
                 (Θ(log log m) vs Θ(log m)) are what the paper's headline term counts.\n\
                 Epoch schedules agree up to ±1 either way — the trigger choice does\n\
                 not affect correctness.",
            ),
    );
}
