//! E10 (Lemma 2.1): Morris counters under adaptive white-box adversaries.
//!
//! Claim shape: across many seeds, an adversary that watches the exponents
//! and stops at the "worst" moment cannot push the failure rate above the
//! oblivious one; space grows ~log log m. The adaptive games run through
//! the engine's builder with the real
//! [`ApproxCountReferee`](wb_core::referee::ApproxCountReferee).

use wb_core::game::FnAdversary;
use wb_core::referee::ApproxCountReferee;
use wb_core::rng::RandTranscript;
use wb_core::stream::InsertOnly;
use wb_engine::experiment::{run_cli, ExperimentSpec, GameRow, Metric, Row, RunCtx, Section};
use wb_engine::registry::Params;
use wb_engine::{Game, RefereeSpec, WorkloadSpec};
use wb_sketch::MedianMorris;

fn adaptive_row(log_m: u32) -> Row {
    Row::custom(format!("2^{log_m}"), move |ctx: &RunCtx| {
        let m = ctx.cap(1 << log_m, 1 << 11);
        let games = ctx.trials(20, 4);
        let mut survived = 0;
        let mut peak = 0;
        for seed in 0..games {
            // White-box adversary: stop when the copies disagree the most.
            let adversary = FnAdversary::new(
                move |t: u64, alg: &MedianMorris, _tr: &RandTranscript, _l: Option<&f64>| {
                    let exps: Vec<u64> = alg.counters().iter().map(|c| c.exponent()).collect();
                    let spread = exps.iter().max().unwrap() - exps.iter().min().unwrap();
                    if t >= m || (t > m / 2 && spread >= 8) {
                        None
                    } else {
                        Some(InsertOnly(0))
                    }
                },
            );
            let report = Game::new(MedianMorris::new(0.2, 9))
                .adversary(adversary)
                .referee(ApproxCountReferee::new(0.5))
                .max_rounds(m)
                .seed(3000 + seed)
                .run();
            if report.survived() {
                survived += 1;
            }
            peak = peak.max(report.result.peak_space_bits);
        }
        vec![games.to_string(), survived.to_string(), peak.to_string()]
    })
}

fn main() {
    let mut adaptive = Section::new(
        "E10a: adaptive-stopping adversary vs MedianMorris(0.2, 9), eps tol 0.5",
        &["m", "games", "survived", "peak bits"],
        12,
    );
    for log_m in [12u32, 14, 16] {
        adaptive = adaptive.row(adaptive_row(log_m));
    }

    let mut single = Section::new(
        "E10b: single-counter space vs stream length (log log m growth); a = 0.125",
        &["m", "estimate", "space bits", "ok"],
        12,
    );
    for log_m in [10u32, 14, 18, 22, 26] {
        single = single.row(Row::game(
            GameRow::new(
                format!("2^{log_m}"),
                "morris",
                // MorrisCounter::new(eps, delta) sets a = 2·eps²·delta; the
                // classic a = 0.125 base is eps = 0.5, delta = 0.25.
                Params {
                    eps: 0.5,
                    delta: 0.25,
                    ..Params::default()
                },
                WorkloadSpec::Cycle {
                    items: 1,
                    m: 1 << log_m,
                },
                RefereeSpec::Accept,
            )
            .seed(log_m as u64)
            .batch(4096)
            .metrics(&[Metric::Answer, Metric::SpaceBits, Metric::Ok]),
        ));
    }

    run_cli(
        ExperimentSpec::new("e10", "Morris counters vs adaptive stopping")
            .section(adaptive)
            .section(single)
            .note(
                "E10a: the adaptive stopper wins no more often than oblivious chance.\n\
                 E10b: bits grow by ~0.5 per doubling of log m — the log log m curve\n\
                 (a single counter has no amplification, so the referee is Accept here;\n\
                 E10a carries the refereed guarantee).",
            ),
    );
}
