//! E10 (Lemma 2.1): Morris counters under adaptive white-box adversaries.
//!
//! Claim shape: across many seeds, an adversary that watches the exponents
//! and stops at the "worst" moment cannot push the failure rate above the
//! oblivious one; space grows ~log log m.

use bench::{header, row};
use wb_core::game::{run_game, FnAdversary};
use wb_core::referee::ApproxCountReferee;
use wb_core::rng::{RandTranscript, TranscriptRng};
use wb_core::space::SpaceUsage;
use wb_core::stream::InsertOnly;
use wb_sketch::{MedianMorris, MorrisCounter};

fn main() {
    println!("E10a: adaptive-stopping adversary vs MedianMorris(0.2, 9), eps tol 0.5\n");
    header(&["m", "games", "survived", "peak bits"], 12);
    for log_m in [12u32, 14, 16] {
        let m = 1u64 << log_m;
        let games = 20u64;
        let mut survived = 0;
        let mut peak = 0;
        for seed in 0..games {
            let mut alg = MedianMorris::new(0.2, 9);
            let mut referee = ApproxCountReferee::new(0.5);
            let mut adv = FnAdversary::new(
                move |t: u64, alg: &MedianMorris, _tr: &RandTranscript, _l: Option<&f64>| {
                    // White-box: stop when the copies disagree the most.
                    let exps: Vec<u64> = alg.counters().iter().map(|c| c.exponent()).collect();
                    let spread = exps.iter().max().unwrap() - exps.iter().min().unwrap();
                    if t >= m || (t > m / 2 && spread >= 8) {
                        None
                    } else {
                        Some(InsertOnly(0))
                    }
                },
            );
            let r = run_game(&mut alg, &mut adv, &mut referee, m, 3000 + seed);
            if r.survived() {
                survived += 1;
            }
            peak = peak.max(r.peak_space_bits);
        }
        println!(
            "{}",
            row(
                &[
                    format!("2^{log_m}"),
                    games.to_string(),
                    survived.to_string(),
                    peak.to_string(),
                ],
                12
            )
        );
    }

    println!("\nE10b: single-counter space vs stream length (log log m growth)\n");
    header(&["m", "exponent", "bits"], 12);
    for log_m in [10u32, 14, 18, 22, 26] {
        let m = 1u64 << log_m;
        let mut rng = TranscriptRng::from_seed(log_m as u64);
        let mut c = MorrisCounter::with_base(0.125);
        for _ in 0..m {
            c.increment(&mut rng);
        }
        println!(
            "{}",
            row(
                &[
                    format!("2^{log_m}"),
                    c.exponent().to_string(),
                    c.space_bits().to_string(),
                ],
                12
            )
        );
    }
    println!("\nbits grow by ~0.5 per doubling of log m — the log log m curve.");
}
