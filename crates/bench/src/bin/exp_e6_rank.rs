//! E6 (Theorem 1.6): streaming rank decision.
//!
//! Claim shape: the `H·A` sketch answers the rank-decision problem
//! correctly on planted rank-(k−1) and rank-k instances, including under
//! turnstile row updates, in `Õ(nk)` words vs the exact baseline's `Θ(n²)`.

use bench::{header, row};
use wb_core::rng::TranscriptRng;
use wb_core::space::SpaceUsage;
use wb_linalg::{EntryUpdate, ExactRankDecision, RankDecisionSketch};

/// Stream a random rank-`r` n×n integer matrix into both algorithms.
fn run_instance(n: usize, r: usize, k: usize, seed: u64) -> (bool, bool, u64, u64) {
    let mut rng = TranscriptRng::from_seed(seed);
    let mut rows = vec![vec![0i64; n]; n];
    for _ in 0..r {
        let u: Vec<i64> = (0..n).map(|_| rng.below(7) as i64 - 3).collect();
        let v: Vec<i64> = (0..n).map(|_| rng.below(7) as i64 - 3).collect();
        for i in 0..n {
            for j in 0..n {
                rows[i][j] += u[i] * v[j];
            }
        }
    }
    let mut sk = RankDecisionSketch::new(n, k, &seed.to_be_bytes());
    let mut ex = ExactRankDecision::new(n, k);
    for (i, row) in rows.iter().enumerate() {
        for (j, &v) in row.iter().enumerate() {
            if v != 0 {
                let u = EntryUpdate {
                    row: i,
                    col: j,
                    delta: v,
                };
                sk.update(u);
                ex.update(u);
            }
        }
    }
    (
        sk.rank_at_least_k(),
        ex.rank_at_least_k(),
        sk.space_bits(),
        ex.space_bits(),
    )
}

fn main() {
    println!("E6: planted-rank instances, 10 trials per cell\n");
    header(&["n", "k", "agree", "sketch bits", "exact bits"], 12);
    for &n in &[16usize, 32, 64] {
        for &k in &[2usize, 4, 8] {
            let mut agree = 0;
            let mut bits = (0u64, 0u64);
            for trial in 0..10u64 {
                // Alternate below-threshold and at-threshold ranks.
                let r = if trial % 2 == 0 { k - 1 } else { k + 1 };
                let (s, e, sb, eb) = run_instance(n, r.max(1), k, trial * 997 + n as u64);
                if s == e {
                    agree += 1;
                }
                bits = (sb, eb);
            }
            println!(
                "{}",
                row(
                    &[
                        n.to_string(),
                        k.to_string(),
                        format!("{agree}/10"),
                        bits.0.to_string(),
                        bits.1.to_string(),
                    ],
                    12
                )
            );
        }
    }
    println!("\nagreement must be 10/10 everywhere; sketch bits scale with k·n, exact with n².");
}
