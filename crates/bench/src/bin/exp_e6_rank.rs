//! E6 (Theorem 1.6): streaming rank decision.
//!
//! Claim shape: the `H·A` sketch answers the rank-decision problem
//! correctly on planted rank-(k−1) and rank-k instances, including under
//! turnstile row updates, in `Õ(nk)` words vs the exact baseline's `Θ(n²)`.
//! Both algorithms stream the entry updates through the engine; the exact
//! baseline runs under a final-round referee demanding the planted truth,
//! and "agree" counts sketch-vs-exact agreement across trials.

use wb_core::game::{FnReferee, Verdict};
use wb_core::rng::TranscriptRng;
use wb_core::space::SpaceUsage;
use wb_core::stream::StreamAlg;
use wb_engine::experiment::{run_cli, ExperimentSpec, Row, RunCtx, Section};
use wb_engine::Game;
use wb_linalg::{EntryUpdate, ExactRankDecision, RankDecisionSketch};

/// Entry-update stream of a random rank-`r` n×n integer matrix.
fn instance_stream(n: usize, r: usize, seed: u64) -> Vec<EntryUpdate> {
    let mut rng = TranscriptRng::from_seed(seed);
    let mut rows = vec![vec![0i64; n]; n];
    for _ in 0..r {
        let u: Vec<i64> = (0..n).map(|_| rng.below(7) as i64 - 3).collect();
        let v: Vec<i64> = (0..n).map(|_| rng.below(7) as i64 - 3).collect();
        for i in 0..n {
            for j in 0..n {
                rows[i][j] += u[i] * v[j];
            }
        }
    }
    let mut out = Vec::new();
    for (i, row) in rows.iter().enumerate() {
        for (j, &v) in row.iter().enumerate() {
            if v != 0 {
                out.push(EntryUpdate {
                    row: i,
                    col: j,
                    delta: v,
                });
            }
        }
    }
    out
}

/// Stream the instance through `alg` with a final-round referee comparing
/// the decision against `expected` (None = accept anything).
fn rank_game<A>(alg: A, stream: Vec<EntryUpdate>, expected: Option<bool>) -> (bool, bool, u64)
where
    A: StreamAlg<Update = EntryUpdate, Output = bool> + SpaceUsage + 'static,
{
    let m = stream.len() as u64;
    let referee = FnReferee::new(move |t: u64, out: &bool| match expected {
        Some(want) if t >= m && *out != want => {
            Verdict::violation(format!("round {t}: decided {out}, planted truth {want}"))
        }
        _ => Verdict::Correct,
    });
    let (report, alg) = Game::new(alg)
        .script(stream)
        .referee(referee)
        .batch(128)
        .play();
    (alg.query(), report.survived(), alg.space_bits())
}

fn main() {
    let mut section = Section::new(
        "planted-rank instances, 10 trials per cell; exact baseline refereed against truth",
        &["n,k", "agree", "exact ok", "sketch bits", "exact bits"],
        12,
    );
    for &n in &[16usize, 32, 64] {
        for &k in &[2usize, 4, 8] {
            section = section.row(Row::custom(format!("{n},{k}"), move |ctx: &RunCtx| {
                let trials = ctx.trials(10, 2);
                let mut agree = 0;
                let mut exact_all_ok = true;
                let mut bits = (0u64, 0u64);
                for trial in 0..trials {
                    // Alternate below-threshold and at-threshold ranks.
                    let r = if trial % 2 == 0 { k - 1 } else { k + 1 };
                    let r = r.max(1);
                    let seed = trial * 997 + n as u64;
                    let stream = instance_stream(n, r, seed);
                    let truth = r >= k;
                    let (s_ans, _, s_bits) = rank_game(
                        RankDecisionSketch::new(n, k, &seed.to_be_bytes()),
                        stream.clone(),
                        None,
                    );
                    let (e_ans, e_ok, e_bits) =
                        rank_game(ExactRankDecision::new(n, k), stream, Some(truth));
                    if s_ans == e_ans {
                        agree += 1;
                    }
                    exact_all_ok &= e_ok;
                    bits = (s_bits, e_bits);
                }
                vec![
                    format!("{agree}/{trials}"),
                    exact_all_ok.to_string(),
                    bits.0.to_string(),
                    bits.1.to_string(),
                ]
            }));
        }
    }
    run_cli(
        ExperimentSpec::new("e6", "streaming rank decision (H·A sketch vs exact)")
            .section(section)
            .note(
                "agreement must be full everywhere; sketch bits scale with k·n, exact\n\
                 with n². 'exact ok' is the final-round referee verdict that the exact\n\
                 baseline matches the planted rank truth.",
            ),
    );
}
