//! E1 (Theorem 1.1 vs Theorem 2.2): space of the robust heavy-hitters
//! algorithm vs deterministic Misra–Gries as the stream length grows.
//!
//! Claim shape: MG bits grow with `log m` (counters carry the count); the
//! robust algorithm's counters count samples and saturate, leaving only
//! the `O(log log m)` Morris term — so its curve flattens while MG's keeps
//! climbing. Both must remain correct.

use bench::{header, row};
use wb_core::rng::TranscriptRng;
use wb_core::space::SpaceUsage;
use wb_core::stream::FrequencyVector;
use wb_sketch::{MisraGries, RobustL1HeavyHitters};

fn main() {
    let n = 1u64 << 16;
    let eps = 0.125;
    // Worst case for the Misra-Gries space bound: few distinct items, so
    // every retained counter grows linearly with m (log m bits each).
    println!("E1: eps = {eps}, n = 2^16, uniform stream over 8 items\n");
    header(&["m", "MG bits", "robust bits", "MG ok", "robust ok"], 12);
    for log_m in [12u32, 14, 16, 18, 20, 22] {
        let m = 1u64 << log_m;
        let stream: Vec<u64> = (0..m).map(|t| t % 8).collect();
        let mut rng = TranscriptRng::from_seed(1000 + log_m as u64);
        let mut mg = MisraGries::new(eps, n);
        let mut robust = RobustL1HeavyHitters::new(n, eps);
        let mut truth = FrequencyVector::new();
        for &item in &stream {
            mg.insert(item);
            robust.insert(item, &mut rng);
            truth.insert(item);
        }
        let l1 = truth.l1() as f64;
        let heavy = truth.items_above(eps * l1);
        let mg_ok = heavy.iter().all(|&i| mg.estimate(i) > 0);
        let robust_ok = heavy.iter().all(|&i| {
            robust
                .heavy_hitters()
                .iter()
                .any(|&(j, est)| j == i && (est - truth.get(i) as f64).abs() < eps * l1)
        });
        println!(
            "{}",
            row(
                &[
                    format!("2^{log_m}"),
                    mg.space_bits().to_string(),
                    robust.space_bits().to_string(),
                    mg_ok.to_string(),
                    robust_ok.to_string(),
                ],
                12
            )
        );
    }
    println!(
        "\nshape check: MG grows ~2 bits per 4x m (log m per counter); the robust\n\
         curve flattens once sampling kicks in (counters count samples, Thm 1.1)."
    );
}
