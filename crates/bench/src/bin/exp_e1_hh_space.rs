//! E1 (Theorem 1.1 vs Theorem 2.2): robust heavy-hitter space vs
//! Misra–Gries. The spec lives in [`bench::specs::e1`] so the golden-report
//! test can drive it directly.

fn main() {
    wb_engine::experiment::run_cli(bench::specs::e1());
}
