//! E7 (Theorem 1.7 / §2.6): string fingerprints under white-box attack,
//! and streaming pattern matching.
//!
//! Claim shape: the Karp–Rabin order attack succeeds at *every* parameter
//! size (cost = one order computation); the equivalent random-search
//! budget never breaks the DL-exponent hash at demo sizes; Algorithm 6
//! reports exactly the naive matcher's occurrences on unbordered-period
//! patterns (enforced by a final-round referee in an engine-driven game)
//! and its space tracks `p + |P|/p`, not the text length.

use wb_core::game::{FnReferee, Verdict};
use wb_core::rng::TranscriptRng;
use wb_crypto::crhf::DlExpParams;
use wb_engine::experiment::{run_cli, ExperimentSpec, Row, RunCtx, Section};
use wb_engine::Game;
use wb_strings::attacks::{dlexp_random_collision_search, kr_order_collision};
use wb_strings::{naive_find_all, KarpRabin, KarpRabinParams, StreamingPatternMatcher};

fn main() {
    let mut attacks = Section::new(
        "E7a: Karp-Rabin order attack vs DL-exponent random search",
        &[
            "p bits",
            "KR broken",
            "collision len",
            "DlExp broken (2^13 tries)",
        ],
        16,
    );
    for bits in [14u32, 16, 18, 20] {
        attacks = attacks.row(Row::custom(bits.to_string(), move |ctx: &RunCtx| {
            let mut rng = TranscriptRng::from_seed(700 + bits as u64);
            let kr = KarpRabinParams::generate(bits, &mut rng);
            let (u, v) = kr_order_collision(&kr);
            let broken = u != v && KarpRabin::fingerprint(kr, &u) == KarpRabin::fingerprint(kr, &v);
            let dl = DlExpParams::generate(40, 2, &mut rng);
            let tries = ctx.cap(1 << 13, 1 << 9);
            let dl_broken = dlexp_random_collision_search(dl, 64, tries, &mut rng).is_some();
            vec![
                broken.to_string(),
                u.len().to_string(),
                dl_broken.to_string(),
            ]
        }));
    }

    let mut matching = Section::new(
        "E7b: streaming pattern matching vs naive reference (final-round referee)",
        &["pattern", "text len", "matches", "ok", "peak bits"],
        12,
    );
    for (name, pattern) in [
        ("aab", vec![0u64, 0, 1]),
        ("abab", vec![0u64, 1, 0, 1]),
        ("aabaab", vec![0u64, 0, 1, 0, 0, 1]),
        ("abcd", vec![0u64, 1, 2, 3]),
    ] {
        matching = matching.row(Row::custom(name, move |ctx: &RunCtx| {
            let mut rng = TranscriptRng::from_seed(777);
            let params = DlExpParams::generate(40, 4, &mut rng);
            let text_len = ctx.cap(20_000, 2_000);
            let text: Vec<u64> = (0..text_len).map(|_| rng.below(3)).collect();
            let expected = naive_find_all(&pattern, &text).len();
            let m = text.len() as u64;
            let referee = FnReferee::new(move |t: u64, found: &usize| {
                if t >= m && *found != expected {
                    Verdict::violation(format!(
                        "round {t}: {found} occurrences reported, naive finds {expected}"
                    ))
                } else {
                    Verdict::Correct
                }
            });
            let (report, _) = Game::new(StreamingPatternMatcher::new(&pattern, params))
                .script(text)
                .referee(referee)
                .play();
            vec![
                text_len.to_string(),
                expected.to_string(),
                report.survived().to_string(),
                report.result.peak_space_bits.to_string(),
            ]
        }));
    }

    run_cli(
        ExperimentSpec::new("e7", "string fingerprints and streaming pattern matching")
            .section(attacks)
            .section(matching)
            .note(
                "peak bits stay O(p·log T + |P|/p) while the text is 20000 symbols long;\n\
                 ok is the final-round referee verdict that the matcher agrees with the\n\
                 naive reference.",
            ),
    );
}
