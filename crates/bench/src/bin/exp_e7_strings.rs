//! E7 (Theorem 1.7 / §2.6): string fingerprints under white-box attack,
//! and streaming pattern matching.
//!
//! Claim shape: the Karp–Rabin order attack succeeds at *every* parameter
//! size (cost = one order computation); the equivalent random-search
//! budget never breaks the DL-exponent hash at demo sizes; Algorithm 6
//! reports exactly the naive matcher's occurrences on unbordered-period
//! patterns and its space tracks `p + |P|/p`, not the text length.

use bench::{header, row};
use wb_core::rng::TranscriptRng;
use wb_core::space::SpaceUsage;
use wb_crypto::crhf::DlExpParams;
use wb_strings::attacks::{dlexp_random_collision_search, kr_order_collision};
use wb_strings::{naive_find_all, KarpRabin, KarpRabinParams, StreamingPatternMatcher};

fn main() {
    println!("E7a: Karp–Rabin order attack vs DL-exponent random search\n");
    header(
        &[
            "p bits",
            "KR broken",
            "collision len",
            "DlExp broken (2^13 tries)",
        ],
        16,
    );
    for bits in [14u32, 16, 18, 20] {
        let mut rng = TranscriptRng::from_seed(700 + bits as u64);
        let kr = KarpRabinParams::generate(bits, &mut rng);
        let (u, v) = kr_order_collision(&kr);
        let broken = u != v && KarpRabin::fingerprint(kr, &u) == KarpRabin::fingerprint(kr, &v);
        let dl = DlExpParams::generate(40, 2, &mut rng);
        let dl_broken = dlexp_random_collision_search(dl, 64, 1 << 13, &mut rng).is_some();
        println!(
            "{}",
            row(
                &[
                    bits.to_string(),
                    broken.to_string(),
                    u.len().to_string(),
                    dl_broken.to_string(),
                ],
                16
            )
        );
    }

    println!("\nE7b: streaming pattern matching vs naive reference\n");
    header(
        &["pattern", "text len", "matches", "agree", "peak bits"],
        12,
    );
    let mut rng = TranscriptRng::from_seed(777);
    let params = DlExpParams::generate(40, 4, &mut rng);
    for (name, pattern) in [
        ("aab", vec![0u64, 0, 1]),
        ("abab", vec![0u64, 1, 0, 1]),
        ("aabaab", vec![0u64, 0, 1, 0, 0, 1]),
        ("abcd", vec![0u64, 1, 2, 3]),
    ] {
        let text: Vec<u64> = (0..20_000).map(|_| rng.below(3)).collect();
        let mut m = StreamingPatternMatcher::new(&pattern, params);
        let mut peak = 0;
        for &c in &text {
            m.push(c);
            peak = peak.max(m.space_bits());
        }
        let naive = naive_find_all(&pattern, &text);
        println!(
            "{}",
            row(
                &[
                    name.to_string(),
                    text.len().to_string(),
                    m.matches().len().to_string(),
                    (m.matches() == &naive[..]).to_string(),
                    peak.to_string(),
                ],
                12
            )
        );
    }
    println!("\npeak bits stay O(p·log T + |P|/p) while the text is 20000 symbols long.");
}
