//! E3 (Theorem 2.14 vs Theorem 2.11): robust HHH vs deterministic TMS12.
//!
//! Claim shape: both detect the planted hot /24 prefix and hot host at all
//! stream lengths; TMS12's counters carry `log m` bits while the robust
//! instance's counters count samples.

use bench::{ddos_stream, header, row};
use wb_core::rng::TranscriptRng;
use wb_core::space::SpaceUsage;
use wb_sketch::hhh::{HierarchicalSpaceSaving, RadixHierarchy, RobustHHH};

fn main() {
    let hierarchy = RadixHierarchy::ipv4();
    let (eps, gamma) = (0.02, 0.10);
    let subnet_id = (10u64 << 16) | (1 << 8) | 7;
    let host_id = (203u64 << 24) | (113 << 8) | 5;
    println!("E3: IPv4 hierarchy (h=4), eps = {eps}, gamma = {gamma}\n");
    header(
        &[
            "m",
            "TMS12 bits",
            "robust bits",
            "TMS12 hits",
            "robust hits",
        ],
        12,
    );
    for log_m in [14u32, 16, 18, 20] {
        let m = 1u64 << log_m;
        let stream = ddos_stream(m, 900 + log_m as u64);
        let mut rng = TranscriptRng::from_seed(901 + log_m as u64);
        let mut tms = HierarchicalSpaceSaving::new(hierarchy, eps, gamma);
        let mut robust = RobustHHH::new(hierarchy, eps, gamma);
        for &ip in &stream {
            tms.insert(ip);
            robust.insert(ip, &mut rng);
        }
        let hits = |report: &[(wb_sketch::hhh::Prefix, f64)]| {
            let subnet = report
                .iter()
                .any(|&(p, _)| p.level == 1 && p.id == subnet_id);
            let host = report.iter().any(|&(p, _)| p.level == 0 && p.id == host_id);
            format!("{}/{}", subnet as u8, host as u8)
        };
        println!(
            "{}",
            row(
                &[
                    format!("2^{log_m}"),
                    tms.space_bits().to_string(),
                    robust.space_bits().to_string(),
                    hits(&tms.solve(gamma)),
                    hits(&robust.solve()),
                ],
                12
            )
        );
    }
    println!("\nhits column: planted /24 prefix detected / planted host detected (1 = yes).");
}
