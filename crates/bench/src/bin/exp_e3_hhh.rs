//! E3 (Theorem 2.14 vs Theorem 2.11): robust HHH vs deterministic TMS12.
//!
//! Claim shape: both detect the planted hot /24 prefix and hot host at all
//! stream lengths; TMS12's counters carry `log m` bits while the robust
//! instance's counters count samples. Detection is enforced by a referee
//! at the final round of an engine-driven game, so a miss is a recorded
//! game violation, not a silently false table cell.

use bench::ddos_stream;
use wb_core::game::{FnReferee, Verdict};
use wb_core::space::SpaceUsage;
use wb_engine::experiment::{run_cli, ExperimentSpec, Row, RunCtx, Section};
use wb_engine::Game;
use wb_sketch::hhh::{HierarchicalSpaceSaving, Prefix, RadixHierarchy, RobustHHH};

const EPS: f64 = 0.02;
const GAMMA: f64 = 0.10;
const SUBNET_ID: u64 = (10u64 << 16) | (1 << 8) | 7;
const HOST_ID: u64 = (203u64 << 24) | (113 << 8) | 5;

fn hits(report: &[(Prefix, f64)]) -> (bool, bool) {
    let subnet = report
        .iter()
        .any(|&(p, _)| p.level == 1 && p.id == SUBNET_ID);
    let host = report.iter().any(|&(p, _)| p.level == 0 && p.id == HOST_ID);
    (subnet, host)
}

type HhhCheck = FnReferee<Box<dyn FnMut(u64, &Vec<(Prefix, f64)>) -> Verdict>>;

/// Referee that demands both planted prefixes appear in the final answer.
fn planted_referee(m: u64) -> HhhCheck {
    FnReferee::new(Box::new(move |t: u64, out: &Vec<(Prefix, f64)>| {
        if t < m {
            return Verdict::Correct;
        }
        match hits(out) {
            (true, true) => Verdict::Correct,
            (subnet, host) => Verdict::violation(format!(
                "round {t}: planted prefixes missed (subnet {subnet}, host {host})"
            )),
        }
    }))
}

fn row_pair(log_m: u32) -> [Row; 2] {
    let tms = Row::custom(format!("2^{log_m} tms12"), move |ctx: &RunCtx| {
        let m = ctx.cap(1 << log_m, 1 << 11);
        let stream = ddos_stream(m, 900 + log_m as u64);
        let (report, alg) = Game::new(HierarchicalSpaceSaving::new(
            RadixHierarchy::ipv4(),
            EPS,
            GAMMA,
        ))
        .script(
            stream
                .into_iter()
                .map(wb_core::stream::InsertOnly)
                .collect(),
        )
        .referee(planted_referee(m))
        .batch(512)
        .seed(901 + log_m as u64)
        .play();
        let (s, h) = hits(&alg.solve(GAMMA));
        vec![
            alg.space_bits().to_string(),
            format!("{}/{}", s as u8, h as u8),
            report.survived().to_string(),
        ]
    });
    let robust = Row::custom(format!("2^{log_m} robust"), move |ctx: &RunCtx| {
        let m = ctx.cap(1 << log_m, 1 << 11);
        let stream = ddos_stream(m, 900 + log_m as u64);
        let (report, alg) = Game::new(RobustHHH::new(RadixHierarchy::ipv4(), EPS, GAMMA))
            .script(
                stream
                    .into_iter()
                    .map(wb_core::stream::InsertOnly)
                    .collect(),
            )
            .referee(planted_referee(m))
            .batch(512)
            .seed(901 + log_m as u64)
            .play();
        let (s, h) = hits(&alg.solve());
        vec![
            alg.space_bits().to_string(),
            format!("{}/{}", s as u8, h as u8),
            report.survived().to_string(),
        ]
    });
    [tms, robust]
}

fn main() {
    let mut section = Section::new(
        format!("IPv4 hierarchy (h=4), eps = {EPS}, gamma = {GAMMA}; hits = subnet/host"),
        &["m / alg", "space bits", "hits", "ok"],
        14,
    );
    for log_m in [14u32, 16, 18, 20] {
        section = section.rows(row_pair(log_m));
    }
    run_cli(
        ExperimentSpec::new("e3", "hierarchical heavy hitters on DDoS traffic")
            .section(section)
            .note(
                "hits: planted /24 prefix detected / planted host detected (1 = yes); ok is\n\
                 the final-round referee verdict demanding both detections.",
            ),
    );
}
