//! Shared workload generators and table formatting for the per-theorem
//! experiment binaries (`src/bin/exp_*.rs`) and the Criterion benches.
//!
//! The generators and table helpers live in `wb_engine` now (the engine's
//! experiment runner and registry adversaries use them too); this crate
//! re-exports them so the benches and any external callers keep their
//! original paths.

pub mod specs;

pub use wb_engine::report::{header, row};
pub use wb_engine::tournament;
pub use wb_engine::workload::{
    churn_stream, cycle_stream, ddos_stream, uniform_stream, zipf_stream,
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_stream_has_heavy_head() {
        let s = zipf_stream(1 << 16, 20_000, 8, 1);
        let head = s.iter().filter(|&&i| i == 0).count();
        // Item 0 carries ~0.7/H(8) ≈ 25% of the stream.
        assert!(head > 3_000, "head count {head}");
        assert_eq!(s.len(), 20_000);
    }

    #[test]
    fn ddos_stream_shares() {
        let s = ddos_stream(20_000, 2);
        let subnet = s
            .iter()
            .filter(|&&ip| ip >> 8 == (10 << 16) | (1 << 8) | 7)
            .count();
        assert!((4000..6000).contains(&subnet), "subnet share {subnet}");
    }

    #[test]
    fn churn_stream_shape() {
        let s = churn_stream(1 << 10, 4, 100, 3);
        assert_eq!(s.len(), 4 * 150);
        assert!(s.iter().any(|u| u.delta < 0));
    }

    #[test]
    fn table_row_formatting() {
        let r = row(&["a".into(), "bb".into()], 4);
        assert_eq!(r, "   a |   bb");
    }
}
