//! Shared workload generators and table formatting for the per-theorem
//! experiment binaries (`src/bin/exp_*.rs`) and the Criterion benches.
//!
//! Each experiment binary regenerates one row block of `EXPERIMENTS.md`;
//! see DESIGN.md §5 for the experiment index.

use wb_core::rng::TranscriptRng;
use wb_core::stream::Turnstile;

/// A Zipf-flavoured insertion stream: item `i ∈ [heavy_items]` receives a
/// `~1/(i+1)`-proportional share; the rest is uniform noise over `[n]`.
pub fn zipf_stream(n: u64, m: u64, heavy_items: u64, seed: u64) -> Vec<u64> {
    let mut rng = TranscriptRng::from_seed(seed);
    // Precompute cumulative Zipf weights for the heavy head (70% of mass).
    let weights: Vec<f64> = (0..heavy_items).map(|i| 1.0 / (i + 1) as f64).collect();
    let total: f64 = weights.iter().sum();
    (0..m)
        .map(|_| {
            if rng.bernoulli(0.7) {
                let mut u = rng.next_f64() * total;
                for (i, w) in weights.iter().enumerate() {
                    if u < *w {
                        return i as u64;
                    }
                    u -= w;
                }
                heavy_items - 1
            } else {
                heavy_items + rng.below(n - heavy_items)
            }
        })
        .collect()
}

/// Synthetic IPv4 DDoS traffic: one hot /24 prefix, one hot host, noise.
pub fn ddos_stream(m: u64, seed: u64) -> Vec<u64> {
    let mut rng = TranscriptRng::from_seed(seed);
    (0..m)
        .map(|t| match t % 20 {
            0..=4 => (10 << 24) | (1 << 16) | (7 << 8) | rng.below(256), // /24, 25%
            5..=7 => (203 << 24) | (113 << 8) | 5,                       // host, 15%
            _ => rng.below(1 << 32),
        })
        .collect()
}

/// Turnstile churn: waves of insertions followed by partial deletions.
pub fn churn_stream(n: u64, waves: u64, wave_size: u64, seed: u64) -> Vec<Turnstile> {
    let mut rng = TranscriptRng::from_seed(seed);
    let mut out = Vec::with_capacity((waves * wave_size * 3 / 2) as usize);
    for w in 0..waves {
        let base = rng.below(n);
        for i in 0..wave_size {
            out.push(Turnstile::insert((base + i * 7) % n));
        }
        for i in 0..wave_size / 2 {
            out.push(Turnstile::delete((base + i * 7) % n));
        }
        let _ = w;
    }
    out
}

/// Print a Markdown-ish table row, padding each cell to `width`.
pub fn row(cells: &[String], width: usize) -> String {
    cells
        .iter()
        .map(|c| format!("{c:>width$}"))
        .collect::<Vec<_>>()
        .join(" | ")
}

/// Print a table header plus separator.
pub fn header(cells: &[&str], width: usize) {
    println!(
        "{}",
        row(
            &cells.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
            width
        )
    );
    println!(
        "{}",
        cells
            .iter()
            .map(|_| "-".repeat(width))
            .collect::<Vec<_>>()
            .join("-|-")
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_stream_has_heavy_head() {
        let s = zipf_stream(1 << 16, 20_000, 8, 1);
        let head = s.iter().filter(|&&i| i == 0).count();
        // Item 0 carries ~0.7/H(8) ≈ 25% of the stream.
        assert!(head > 3_000, "head count {head}");
        assert_eq!(s.len(), 20_000);
    }

    #[test]
    fn ddos_stream_shares() {
        let s = ddos_stream(20_000, 2);
        let subnet = s
            .iter()
            .filter(|&&ip| ip >> 8 == (10 << 16) | (1 << 8) | 7)
            .count();
        assert!((4000..6000).contains(&subnet), "subnet share {subnet}");
    }

    #[test]
    fn churn_stream_shape() {
        let s = churn_stream(1 << 10, 4, 100, 3);
        assert_eq!(s.len(), 4 * 150);
        assert!(s.iter().any(|u| u.delta < 0));
    }

    #[test]
    fn table_row_formatting() {
        let r = row(&["a".into(), "bb".into()], 4);
        assert_eq!(r, "   a |   bb");
    }
}
