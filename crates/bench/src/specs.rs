//! Library-constructible [`ExperimentSpec`]s.
//!
//! Specs that tests need to drive directly (golden-report checks, runner
//! regressions) live here; the matching `exp_e*` binary is a one-line
//! `run_cli(specs::eN())`. Specs that no test consumes stay inline in
//! their binaries.

use wb_engine::experiment::{ExperimentSpec, GameRow, Metric, Row, Section};
use wb_engine::registry::Params;
use wb_engine::{RefereeSpec, WorkloadSpec};

/// E1 (Theorem 1.1 vs Theorem 2.2): space of the robust heavy-hitters
/// algorithm vs deterministic Misra–Gries as the stream length grows.
///
/// Claim shape: MG bits grow with `log m` (counters carry the count); the
/// robust algorithm's counters count samples and saturate, leaving only
/// the `O(log log m)` Morris term — so its curve flattens while MG's keeps
/// climbing. Both must stay correct: "ok" is the real
/// [`HeavyHitterReferee`](wb_core::referee::HeavyHitterReferee) verdict.
pub fn e1() -> ExperimentSpec {
    let eps = 0.125;
    // Worst case for the Misra-Gries space bound: few distinct items, so
    // every retained counter grows linearly with m (log m bits each).
    let mut section = Section::new(
        "uniform stream over 8 items; ok = HeavyHitterReferee(eps, eps) verdict",
        &["m / alg", "space bits", "peak bits", "ok"],
        14,
    );
    for log_m in [12u32, 14, 16, 18, 20, 22] {
        let m = 1u64 << log_m;
        for alg in ["misra_gries", "robust_hh"] {
            section = section.row(Row::game(
                GameRow::new(
                    format!("2^{log_m} {alg}"),
                    alg,
                    Params::default().with_n(1 << 16).with_eps(eps),
                    WorkloadSpec::Cycle { items: 8, m },
                    RefereeSpec::HeavyHitters {
                        eps,
                        tol: eps,
                        phi: None,
                        grace: 64,
                    },
                )
                .seed(1000 + log_m as u64)
                .batch(1024)
                .metrics(&[Metric::SpaceBits, Metric::PeakSpaceBits, Metric::Ok]),
            ));
        }
    }
    ExperimentSpec::new(
        "e1",
        format!("robust vs deterministic heavy-hitter space, eps = {eps}, n = 2^16"),
    )
    .section(section)
    .note(
        "shape check: MG grows ~2 bits per 4x m (log m per counter); the robust\n\
         curve flattens once sampling kicks in (counters count samples, Thm 1.1).",
    )
}
