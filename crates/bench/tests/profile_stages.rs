//! Stage-by-stage throughput attribution for the streamed uniform
//! pipeline — a profiling aid, not a correctness test (run with
//! `cargo test --release -p bench --test profile_stages -- --ignored --nocapture`).

use std::time::Instant;
use wb_core::rng::TranscriptRng;
use wb_core::stream::{InsertOnly, RunAggregator};
use wb_engine::registry::{self, Params};
use wb_engine::workload::UpdateSource;
use wb_engine::{Update, WorkloadSpec};

fn time(label: &str, m: u64, f: impl FnOnce() -> u64) {
    let t = Instant::now();
    let s = f();
    let el = t.elapsed().as_secs_f64();
    println!("{label:30} {:6.1} Mups  (sink {s})", m as f64 / el / 1e6);
}

#[test]
#[ignore = "profiling aid; run explicitly in release mode"]
fn profile_pipeline_stages() {
    let params = Params::default().with_n(1 << 12);
    let m = 1u64 << 21;
    let spec = WorkloadSpec::Uniform {
        n: params.n,
        m,
        seed: 97,
    };
    // Stage 1: generation only.
    time("gen only", m, || {
        let mut src = spec.stream();
        let mut buf: Vec<Update> = Vec::with_capacity(4096);
        let mut sink = 0u64;
        while src.next_chunk(&mut buf) > 0 {
            sink = sink.wrapping_add(buf.len() as u64);
        }
        sink
    });
    // Stage 2: gen + conversion to InsertOnly.
    time("gen + convert", m, || {
        let mut src = spec.stream();
        let mut buf: Vec<Update> = Vec::with_capacity(4096);
        let mut sink = 0u64;
        while src.next_chunk(&mut buf) > 0 {
            let conv: Vec<InsertOnly> = buf
                .iter()
                .map(|u| match u {
                    Update::Insert(i) => InsertOnly(*i),
                    _ => unreachable!(),
                })
                .collect();
            sink = sink.wrapping_add(conv.len() as u64);
        }
        sink
    });
    // Stage 3: gen + convert + aggregate.
    time("gen + convert + agg", m, || {
        let mut src = spec.stream();
        let mut buf: Vec<Update> = Vec::with_capacity(4096);
        let mut agg: RunAggregator<u64> = RunAggregator::new();
        let mut sink = 0u64;
        while src.next_chunk(&mut buf) > 0 {
            let conv: Vec<InsertOnly> = buf
                .iter()
                .map(|u| match u {
                    Update::Insert(i) => InsertOnly(*i),
                    _ => unreachable!(),
                })
                .collect();
            let runs = agg.aggregate(conv.iter().map(|u| (u.0, 1u64)), conv.len());
            sink = sink.wrapping_add(runs.len() as u64);
        }
        sink
    });
    // Stage 4: the full streamed count_min path.
    time("full count_min", m, || {
        let mut alg = registry::get("count_min", &params).unwrap();
        let mut rng = TranscriptRng::from_seed(1);
        let mut src = spec.stream();
        let mut buf: Vec<Update> = Vec::with_capacity(4096);
        while src.next_chunk(&mut buf) > 0 {
            alg.process_batch_dyn(&buf, &mut rng).unwrap();
        }
        alg.space_bits_dyn()
    });
}

#[test]
#[ignore = "profiling aid; run explicitly in release mode"]
fn profile_agg_variants() {
    let params = Params::default().with_n(1 << 12);
    let m = 1u64 << 21;
    let spec = WorkloadSpec::Uniform {
        n: params.n,
        m,
        seed: 97,
    };
    // Variant A: packed u32 slots (epoch 8 bits, run idx 24 bits).
    time("agg packed u32", m, || {
        let mut src = spec.stream();
        let mut buf: Vec<Update> = Vec::with_capacity(4096);
        let mut slots: Vec<u32> = Vec::new();
        let mut runs: Vec<(u64, u64)> = Vec::new();
        let mut epoch = 0u32;
        let mut sink = 0u64;
        while src.next_chunk(&mut buf) > 0 {
            let want = (buf.len().max(4) * 2).next_power_of_two();
            if slots.len() < want {
                slots = vec![0; want];
                epoch = 0;
            }
            let mask = slots.len() - 1;
            epoch += 1;
            if epoch == 256 {
                slots.iter_mut().for_each(|s| *s = 0);
                epoch = 1;
            }
            runs.clear();
            for u in &buf {
                let item = match u {
                    Update::Insert(i) => *i,
                    _ => unreachable!(),
                };
                let mut idx = (item.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize & mask;
                loop {
                    let s = slots[idx];
                    if s >> 24 != epoch {
                        slots[idx] = (epoch << 24) | runs.len() as u32;
                        runs.push((item, 1));
                        break;
                    }
                    let ri = (s & 0xFF_FFFF) as usize;
                    if runs[ri].0 == item {
                        runs[ri].1 += 1;
                        break;
                    }
                    idx = (idx + 1) & mask;
                }
            }
            sink = sink.wrapping_add(runs.len() as u64);
        }
        sink
    });
    // Variant B: no aggregation, direct 4-row hashing per update.
    time("direct hash (no agg)", m, || {
        let mut rng = TranscriptRng::from_seed(params.seed);
        let seeds: Vec<(u64, u64)> = (0..4)
            .map(|_| (rng.range(1, (1u64 << 61) - 1), rng.below((1u64 << 61) - 1)))
            .collect();
        let mut table = vec![0u64; 4 * 256];
        let mut src = spec.stream();
        let mut buf: Vec<Update> = Vec::with_capacity(4096);
        while src.next_chunk(&mut buf) > 0 {
            for u in &buf {
                let x = match u {
                    Update::Insert(i) => *i as u128,
                    _ => unreachable!(),
                };
                for (r, &(a, b)) in seeds.iter().enumerate() {
                    let h = wb_crypto::mersenne::reduce128(a as u128 * x + b as u128);
                    table[r * 256 + (h & 255) as usize] += 1;
                }
            }
        }
        table.iter().sum()
    });
}
