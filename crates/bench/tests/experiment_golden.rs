//! Golden-report test: the JSON-lines output of an `exp_e*` spec under
//! `--quick` is pinned to a committed file, so report-format drift (field
//! renames, metric reordering, escaping changes) is caught in CI instead
//! of silently breaking downstream report consumers.
//!
//! To regenerate after an *intentional* format change:
//!
//! ```text
//! WB_REGEN_GOLDEN=1 cargo test -p bench --test experiment_golden
//! ```

use wb_engine::experiment::{run, RunnerConfig};

fn golden_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("e1_quick.jsonl")
}

#[test]
fn e1_quick_json_report_matches_golden() {
    let cfg = RunnerConfig {
        quick: true,
        threads: 1,
        ..RunnerConfig::default()
    };
    let lines = run(bench::specs::e1(), &cfg);
    assert!(!lines.is_empty(), "e1 produced no report rows");
    let actual = lines.join("\n") + "\n";

    let path = golden_path();
    if std::env::var_os("WB_REGEN_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &actual).unwrap();
        eprintln!("regenerated {}", path.display());
        return;
    }

    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); regenerate with \
             WB_REGEN_GOLDEN=1 cargo test -p bench --test experiment_golden",
            path.display()
        )
    });
    assert_eq!(
        actual,
        golden,
        "e1 --quick report drifted from {}; if intentional, regenerate with \
         WB_REGEN_GOLDEN=1 cargo test -p bench --test experiment_golden",
        path.display()
    );
}

#[test]
fn e1_quick_report_is_stable_across_thread_counts() {
    let lines_at = |threads: usize| {
        run(
            bench::specs::e1(),
            &RunnerConfig {
                quick: true,
                threads,
                ..RunnerConfig::default()
            },
        )
        .join("\n")
    };
    assert_eq!(lines_at(1), lines_at(4), "parallel sections diverged");
}
