//! # wbstream — facade crate
//!
//! Re-exports the entire workspace under one roof. See the individual
//! crates for details:
//!
//! * [`core`](mod@core) — the white-box adversarial model (game, transcripted
//!   randomness, bit-level space accounting);
//! * [`engine`](mod@engine) — the unified driver: fluent game builder,
//!   string-keyed algorithm registry, batched ingestion, experiment runner;
//! * [`crypto`](mod@crypto) — SHA-256, CRHFs, SIS sketches;
//! * [`sketch`](mod@sketch) — Morris counters, heavy hitters, HHH, L0;
//! * [`strings`](mod@strings) — fingerprints and streaming pattern matching;
//! * [`linalg`](mod@linalg) — rank decision over Z_q;
//! * [`graph`](mod@graph) — vertex-neighborhood identification;
//! * [`lowerbounds`](mod@lowerbounds) — executable lower bounds.

pub use wb_core as core;
pub use wb_crypto as crypto;
pub use wb_engine as engine;
pub use wb_graph as graph;
pub use wb_linalg as linalg;
pub use wb_lowerbounds as lowerbounds;
pub use wb_sketch as sketch;
pub use wb_strings as strings;
