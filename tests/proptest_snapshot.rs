//! Satellite of the snapshot tentpole, property-tested: for **every**
//! registry algorithm, `snapshot → restore → continue` is indistinguishable
//! from never having stopped — on arbitrary streams, at arbitrary split
//! points, under chunk sizes {1, 7, 4096} (single-update, ragged, and
//! bulk ingestion), with the algorithm's transcript RNG crossing the
//! snapshot alongside the sketch. A dedicated case exercises a
//! [`TranscriptRng`] that has wrapped its 1024-word transcript ring, the
//! regime where a naive "replay from the start" restore would diverge.

use proptest::prelude::*;
use wb_core::rng::TranscriptRng;
use wb_core::snap;
use wb_engine::registry::{self, Params};
use wb_engine::{DynStreamAlg, StreamModel, Update};

/// Chunk sizes the round-trip must be invariant under: one update at a
/// time, a ragged prime, and a bulk batch larger than any test stream.
const CHUNKS: [usize; 3] = [1, 7, 4096];

fn params_for_test(ctor_seed: u64) -> Params {
    Params::default().with_n(1 << 10).with_seed(ctor_seed)
}

/// Map raw `(item, delta)` pairs into the algorithm's model: turnstile
/// algorithms see mixed inserts and deletions, insert-only algorithms see
/// pure inserts over the same item sequence.
fn shape_stream(raw: &[(u64, i64)], model: StreamModel) -> Vec<Update> {
    raw.iter()
        .map(|&(item, delta)| {
            let u = if delta == 0 {
                Update::Insert(item)
            } else {
                Update::Turnstile { item, delta }
            };
            if model.accepts(&u) {
                u
            } else {
                Update::Insert(item)
            }
        })
        .collect()
}

/// Feed `updates` in `chunk`-sized batches.
fn feed(
    alg: &mut dyn DynStreamAlg,
    rng: &mut TranscriptRng,
    updates: &[Update],
    chunk: usize,
) -> Result<(), wb_core::WbError> {
    for batch in updates.chunks(chunk.max(1)) {
        alg.process_batch_dyn(batch, rng)?;
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The exhaustive round-trip: every algorithm × every chunk size.
    #[test]
    fn snapshot_restore_continue_matches_uninterrupted_for_every_algorithm(
        raw in proptest::collection::vec((0u64..512, -2i64..=3), 40..400),
        split_pct in 5u64..95,
        ctor_seed in 0u64..1000,
        game_seed in 0u64..1000,
    ) {
        for name in registry::names() {
            let params = params_for_test(ctor_seed);
            let reference = registry::get(name, &params).unwrap();
            let updates = shape_stream(&raw, reference.model_dyn());
            let split =
                ((updates.len() as u64 * split_pct / 100) as usize).clamp(1, updates.len() - 1);
            for chunk in CHUNKS {
                // Uninterrupted run.
                let mut a = registry::get(name, &params).unwrap();
                let mut rng_a = TranscriptRng::from_seed(game_seed);
                feed(a.as_mut(), &mut rng_a, &updates, chunk).unwrap();

                // Run to the split, snapshot sketch + RNG, drop everything.
                let (alg_bytes, rng_bytes) = {
                    let mut b = registry::get(name, &params).unwrap();
                    let mut rng_b = TranscriptRng::from_seed(game_seed);
                    feed(b.as_mut(), &mut rng_b, &updates[..split], chunk).unwrap();
                    (b.snapshot_dyn().unwrap(), snap::to_bytes(&rng_b))
                };

                // Restore into a twin and continue.
                let mut c = registry::get(name, &params).unwrap();
                let mut rng_c = TranscriptRng::from_seed(game_seed);
                c.restore_dyn(&alg_bytes).unwrap();
                snap::from_bytes(&mut rng_c, &rng_bytes).unwrap();
                feed(c.as_mut(), &mut rng_c, &updates[split..], chunk).unwrap();

                prop_assert_eq!(
                    c.query_dyn(),
                    a.query_dyn(),
                    "{} diverged after restore (chunk {}, split {})",
                    name, chunk, split
                );
                prop_assert_eq!(
                    c.space_bits_dyn(),
                    a.space_bits_dyn(),
                    "{} space diverged after restore (chunk {})",
                    name, chunk
                );
            }
        }
    }

    /// A transcript RNG that has wrapped its 1024-word ring must cross a
    /// snapshot losslessly: the post-restore draw sequence (and the
    /// transcript the white-box adversary reads) continues draw-for-draw.
    #[test]
    fn wrapped_transcript_ring_survives_snapshot(
        seed in 0u64..5000,
        warmup in 1500usize..4000,
        tail in 1usize..600,
    ) {
        let mut uninterrupted = TranscriptRng::from_seed(seed);
        for _ in 0..warmup {
            uninterrupted.next_u64();
        }

        let mut live = TranscriptRng::from_seed(seed);
        for _ in 0..warmup {
            live.next_u64();
        }
        let bytes = snap::to_bytes(&live);
        let mut resumed = TranscriptRng::from_seed(seed ^ 0xdead_beef); // twin, wrong seed state
        snap::from_bytes(&mut resumed, &bytes).unwrap();

        for i in 0..tail {
            prop_assert_eq!(
                resumed.next_u64(),
                uninterrupted.next_u64(),
                "draw {} diverged after a wrapped-ring restore", i
            );
        }
        prop_assert_eq!(
            resumed.transcript().recent(),
            uninterrupted.transcript().recent(),
            "the adversary-visible transcript must match after restore"
        );
    }
}
