//! Workspace smoke test: the facade re-exports must resolve and compose.
//!
//! Exercises one object from each of the three foundational layers through
//! the `wbstream` facade paths (not the `wb_*` crates directly): a `core`
//! game driving a `sketch` Morris counter, and a `crypto` SIS sketch applied
//! end-to-end.

use wbstream::core::game::{FnReferee, ScriptAdversary, Verdict};
use wbstream::core::rng::TranscriptRng;
use wbstream::core::space::SpaceUsage;
use wbstream::core::stream::InsertOnly;
use wbstream::crypto::sis::{is_sis_solution, SisMatrix, SisParams};
use wbstream::engine::Game;
use wbstream::sketch::MorrisCounter;

#[test]
fn core_game_drives_a_sketch_morris_counter() {
    let m: u64 = 4096;
    let alg = MorrisCounter::new(0.5, 0.01);
    let adv = ScriptAdversary::new((0..m).map(InsertOnly).collect::<Vec<_>>());
    // Generous referee: the game plumbing is under test, not Lemma 2.1's
    // constants — only rule out wildly wrong estimates.
    let referee = FnReferee::new(|t: u64, est: &f64| {
        if t < 64 || (*est >= t as f64 / 100.0 && *est <= t as f64 * 100.0) {
            Verdict::Correct
        } else {
            Verdict::violation(format!("estimate {est} far from true count {t}"))
        }
    });
    let (report, alg) = Game::new(alg)
        .adversary(adv)
        .referee(referee)
        .max_rounds(m)
        .seed(42)
        .play();
    assert!(report.survived(), "Morris counter lost the white-box game");
    assert!(alg.space_bits() <= 64, "Morris state must stay word-sized");
    assert!(alg.estimate() > 0.0);
}

#[test]
fn crypto_sis_sketch_composes_with_core_rng() {
    let params = SisParams {
        d: 4,
        w: 12,
        q: 1_000_003,
        beta_inf: 8,
    };
    params.validate().expect("valid SIS parameters");

    let mut rng = TranscriptRng::from_seed(7);
    let matrix = SisMatrix::random_explicit(params, &mut rng);

    // Sketch a short vector and its negation: linearity means the sum
    // sketches to zero, and the zero vector is never a SIS *solution*
    // (solutions must be nonzero).
    let x: Vec<i64> = (0..12).map(|i| (i % 5) as i64 - 2).collect();
    let sketch = matrix.apply(&x);
    assert_eq!(sketch.len(), 4);
    assert!(sketch.iter().all(|&v| v < params.q));

    let zero = vec![0i64; 12];
    assert_eq!(matrix.apply(&zero), vec![0u64; 4]);
    assert!(!is_sis_solution(&matrix, &zero));
}

#[test]
fn facade_modules_all_resolve() {
    // One symbol per facade module: a compile-time check that every
    // re-exported crate is wired into the workspace DAG.
    let _ = wbstream::strings::period(&[1u64, 2, 1, 2]);
    let _ = wbstream::linalg::ZqMatrix::zero(2, 2, 97);
    let _ = wbstream::graph::VertexArrival::new(3, [0u64, 1]);
    let _ = wbstream::lowerbounds::ExactCounter;
}
