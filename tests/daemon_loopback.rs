//! Loopback integration: `wbd`'s server core under real concurrency.
//!
//! * 64 concurrent tenants (mixed algorithms, sharded and flat) driven by
//!   8 sessions that each multiplex 8 tenants;
//! * graceful drain loses nothing: the final metrics snapshot shows
//!   `applied == accepted` for every tenant and globally;
//! * the `metrics` payload exposes the new instrumentation — per-tenant
//!   ingest rates and accepted/rejected counters, per-shard loads + skew,
//!   queue-stall counters, pool depth, session lifecycle counts.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use wb_daemon::json::Json;
use wb_daemon::{DaemonConfig, Server};

struct Session {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Session {
    fn connect(addr: SocketAddr) -> Session {
        let stream = TcpStream::connect(addr).expect("connect to wbd");
        Session {
            reader: BufReader::new(stream.try_clone().expect("clone stream")),
            writer: stream,
        }
    }

    /// Send one request line, read and parse the one reply line.
    fn roundtrip(&mut self, line: &str) -> Json {
        self.writer
            .write_all(line.as_bytes())
            .and_then(|_| self.writer.write_all(b"\n"))
            .expect("send request");
        let mut reply = String::new();
        let n = self.reader.read_line(&mut reply).expect("read reply");
        assert!(n > 0, "daemon closed the connection after {line:?}");
        Json::parse(reply.trim_end()).unwrap_or_else(|e| panic!("malformed reply {reply:?}: {e}"))
    }

    fn read_reply(&mut self) -> Json {
        let mut reply = String::new();
        let n = self.reader.read_line(&mut reply).expect("read reply");
        assert!(n > 0, "daemon closed the connection");
        Json::parse(reply.trim_end()).unwrap_or_else(|e| panic!("malformed reply {reply:?}: {e}"))
    }

    fn expect_ok(&mut self, line: &str) -> Json {
        let reply = self.roundtrip(line);
        assert_eq!(
            reply.get("ok"),
            Some(&Json::Bool(true)),
            "expected ok reply to {line:?}, got {}",
            reply.to_line()
        );
        reply
    }
}

/// A mixed bag: mergeable (sharded) and unmergeable (flat), insert-only
/// and turnstile.
const ALGS: &[&str] = &[
    "misra_gries",
    "space_saving",
    "count_min",
    "ams_f2",
    "exact_l0",
    "morris",
    "median_morris",
    "robust_hh",
];

fn is_turnstile(alg: &str) -> bool {
    matches!(alg, "ams_f2" | "exact_l0")
}

/// The updates tenant `t` ingests: `per_batch` updates per batch,
/// `batches` batches, deterministic in `t` only.
fn batch_line(tenant: &str, t: u64, batch: u64, per_batch: u64, turnstile: bool) -> String {
    let mut updates = Vec::with_capacity(per_batch as usize);
    for i in 0..per_batch {
        let x = (t * 1_000_003 + batch * 10_007 + i * 101) % 997;
        if turnstile {
            // Mostly inserts with a sprinkle of deletions, well inside the
            // delta budget.
            let delta = if i % 7 == 3 { -1i64 } else { 2 };
            updates.push(format!("[{x},{delta}]"));
        } else {
            updates.push(x.to_string());
        }
    }
    format!(
        "{{\"cmd\":\"ingest\",\"tenant\":\"{tenant}\",\"updates\":[{}]}}",
        updates.join(",")
    )
}

const BATCHES: u64 = 3;
const PER_BATCH: u64 = 200;

#[test]
fn sixty_four_tenants_graceful_drain_loses_nothing() {
    let server = Server::start(DaemonConfig {
        listen: "127.0.0.1:0".into(),
        threads: 4,
        shards: 4,
        chunk: 128,
        ..DaemonConfig::default()
    })
    .expect("start daemon");
    let addr = server.addr();

    // 8 sessions x 8 tenants each = 64 concurrent tenants; each session
    // interleaves its tenants' batches to exercise multiplexing.
    let handles: Vec<_> = (0..8u64)
        .map(|s| {
            std::thread::spawn(move || {
                let mut sess = Session::connect(addr);
                let ids: Vec<(String, &str, u64)> = (0..8u64)
                    .map(|k| {
                        let t = s * 8 + k;
                        let alg = ALGS[(t % ALGS.len() as u64) as usize];
                        (format!("tenant-{t:02}"), alg, t)
                    })
                    .collect();
                for (id, alg, _) in &ids {
                    let hello = format!(
                        "{{\"cmd\":\"hello\",\"tenant\":\"{id}\",\"alg\":\"{alg}\",\"seed\":7}}"
                    );
                    let reply = sess.expect_ok(&hello);
                    assert_eq!(reply.get("alg").and_then(Json::as_str), Some(*alg));
                    let shards = reply.get("shards").and_then(Json::as_u64).unwrap();
                    // Mergeable algorithms shard to the daemon default;
                    // unmergeable ones must stay flat.
                    match *alg {
                        "morris" | "median_morris" | "robust_hh" => assert_eq!(shards, 1),
                        _ => assert_eq!(shards, 4, "{alg} should shard"),
                    }
                }
                // Interleave: batch 0 for all tenants, then batch 1, ...
                for b in 0..BATCHES {
                    for (id, alg, t) in &ids {
                        let line = batch_line(id, *t, b, PER_BATCH, is_turnstile(alg));
                        let reply = sess.expect_ok(&line);
                        assert_eq!(
                            reply.get("accepted").and_then(Json::as_u64),
                            Some(PER_BATCH)
                        );
                    }
                    // A mid-stream query per tenant: must see exactly the
                    // updates accepted so far (read-your-writes).
                    for (id, _, _) in &ids {
                        let reply =
                            sess.expect_ok(&format!("{{\"cmd\":\"query\",\"tenant\":\"{id}\"}}"));
                        assert_eq!(
                            reply.get("processed").and_then(Json::as_u64),
                            Some((b + 1) * PER_BATCH),
                            "query must be quiescent for {id}"
                        );
                        assert!(reply.get("answer").is_some());
                        assert!(reply.get("space_bits").and_then(Json::as_u64).is_some());
                    }
                }
                sess.expect_ok("{\"cmd\":\"bye\"}");
            })
        })
        .collect();
    for h in handles {
        h.join().expect("session thread");
    }

    // Live metrics before the drain: shape-check the new instrumentation.
    // (`closed` bumps just after the bye reply is written, so poll briefly
    // for the 8 session threads to finish bookkeeping.)
    let mut sess = Session::connect(addr);
    let mut metrics = sess.expect_ok("{\"cmd\":\"metrics\"}");
    for _ in 0..200 {
        let closed = metrics
            .get("metrics")
            .and_then(|m| m.get("sessions"))
            .and_then(|s| s.get("closed"))
            .and_then(Json::as_u64);
        if closed == Some(8) {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
        metrics = sess.expect_ok("{\"cmd\":\"metrics\"}");
    }
    let m = metrics.get("metrics").expect("metrics payload");
    let tenants = m.get("tenants").expect("tenants rollup");
    assert_eq!(tenants.get("count").and_then(Json::as_u64), Some(64));
    let per_tenant = m.get("per_tenant").and_then(Json::as_arr).unwrap();
    assert_eq!(per_tenant.len(), 64);
    for t in per_tenant {
        assert!(t.get("ingest_rate_ups").is_some(), "per-tenant ingest rate");
        assert!(t.get("inbox_stalls").and_then(Json::as_u64).is_some());
        let shards = t.get("shards").and_then(Json::as_u64).unwrap();
        if shards > 1 {
            let loads = t.get("shard_loads").and_then(Json::as_arr).unwrap();
            assert_eq!(loads.len(), shards as usize);
            let routed: u64 = loads.iter().map(|l| l.as_u64().unwrap()).sum();
            assert_eq!(routed, BATCHES * PER_BATCH, "all updates routed");
            assert!(t.get("shard_skew").is_some(), "per-shard skew exported");
            assert!(t.get("shard_queue_stalls").is_some());
        } else {
            assert!(
                t.get("shard_loads").is_none(),
                "flat tenants have no shards"
            );
        }
    }
    let pool = m.get("pool").expect("pool stats");
    assert_eq!(pool.get("workers").and_then(Json::as_u64), Some(4));
    assert!(pool.get("submit_stalls").and_then(Json::as_u64).is_some());
    assert_eq!(pool.get("panicked").and_then(Json::as_u64), Some(0));
    let sessions = m.get("sessions").expect("session stats");
    assert_eq!(sessions.get("opened").and_then(Json::as_u64), Some(9));
    assert_eq!(sessions.get("closed").and_then(Json::as_u64), Some(8));

    // The top view renders.
    let top = sess.expect_ok("{\"cmd\":\"top\"}");
    let text = top.get("text").and_then(Json::as_str).unwrap();
    assert!(text.starts_with("wbd  uptime"), "top header: {text:?}");
    assert!(text.contains("TENANT") && text.contains("SKEW"), "{text:?}");

    // Graceful drain via the protocol. The late `hello` is pipelined in
    // the same write as `shutdown` so it deterministically reaches the
    // session before the drain-idle close, and must be a typed refusal —
    // never a disconnect.
    sess.writer
        .write_all(
            b"{\"cmd\":\"shutdown\"}\n\
              {\"cmd\":\"hello\",\"tenant\":\"late\",\"alg\":\"morris\",\"seed\":1}\n",
        )
        .expect("send shutdown + late hello");
    let shutdown_reply = sess.read_reply();
    assert_eq!(shutdown_reply.get("draining"), Some(&Json::Bool(true)));
    let hello_refused = sess.read_reply();
    assert_eq!(
        hello_refused
            .get("error")
            .and_then(|e| e.get("kind"))
            .and_then(Json::as_str),
        Some("draining"),
        "hello during drain must be a typed refusal: {}",
        hello_refused.to_line()
    );
    let finals = server.wait();
    assert_eq!(finals.get("draining"), Some(&Json::Bool(true)));
    let tenants = finals.get("tenants").expect("tenants rollup");
    let expected_total = 64 * BATCHES * PER_BATCH;
    assert_eq!(
        tenants.get("accepted").and_then(Json::as_u64),
        Some(expected_total)
    );
    assert_eq!(
        tenants.get("applied").and_then(Json::as_u64),
        Some(expected_total),
        "graceful drain must apply every accepted update"
    );
    for t in finals.get("per_tenant").and_then(Json::as_arr).unwrap() {
        assert_eq!(
            t.get("applied"),
            t.get("accepted"),
            "no-loss drain for {}",
            t.to_line()
        );
        assert_eq!(t.get("pending_chunks").and_then(Json::as_u64), Some(0));
        assert_eq!(t.get("failed"), Some(&Json::Bool(false)));
    }
    let sessions = finals.get("sessions").expect("session stats");
    assert_eq!(sessions.get("opened"), sessions.get("closed"));
    let pool = finals.get("pool").expect("pool stats");
    assert_eq!(pool.get("submitted"), pool.get("completed"));
    assert_eq!(pool.get("depth").and_then(Json::as_u64), Some(0));
}

/// Regression: a single ingest batch longer than the inbox can hold
/// (INBOX_CHUNKS = 8 chunks) must not deadlock — the drain job has to be
/// running before the session can block on inbox backpressure.
#[test]
fn ingest_batch_larger_than_the_inbox_completes() {
    let server = Server::start(DaemonConfig {
        listen: "127.0.0.1:0".into(),
        threads: 1,
        shards: 1,
        chunk: 8, // 1000 updates = 125 chunks >> 8 inbox slots
        ..DaemonConfig::default()
    })
    .expect("start daemon");
    let mut sess = Session::connect(server.addr());
    sess.expect_ok("{\"cmd\":\"hello\",\"tenant\":\"big\",\"alg\":\"count_min\",\"seed\":3}");
    let updates: Vec<String> = (0..1000u64).map(|i| (i % 31).to_string()).collect();
    let reply = sess.expect_ok(&format!(
        "{{\"cmd\":\"ingest\",\"tenant\":\"big\",\"updates\":[{}]}}",
        updates.join(",")
    ));
    assert_eq!(reply.get("accepted").and_then(Json::as_u64), Some(1000));
    let reply = sess.expect_ok("{\"cmd\":\"query\",\"tenant\":\"big\"}");
    assert_eq!(reply.get("processed").and_then(Json::as_u64), Some(1000));
    sess.expect_ok("{\"cmd\":\"bye\"}");
    server.begin_drain();
    let finals = server.wait();
    let tenants = finals.get("tenants").expect("tenants rollup");
    assert_eq!(tenants.get("applied").and_then(Json::as_u64), Some(1000));
}

/// A request line with no newline must hit a bounded buffer: the daemon
/// replies with a typed `bad_request` and closes the session instead of
/// growing memory without limit.
#[test]
fn overlong_request_line_is_refused_not_buffered_forever() {
    let server = Server::start(DaemonConfig {
        listen: "127.0.0.1:0".into(),
        threads: 1,
        ..DaemonConfig::default()
    })
    .expect("start daemon");
    let mut sess = Session::connect(server.addr());
    // Stream ~9 MB without a newline (cap is 8 MiB). The daemon may
    // refuse and close while we are still writing, so later writes are
    // allowed to fail.
    let blob = vec![b'['; 1 << 20];
    for _ in 0..9 {
        if sess.writer.write_all(&blob).is_err() {
            break;
        }
    }
    let reply = sess.read_reply();
    assert_eq!(
        reply
            .get("error")
            .and_then(|e| e.get("kind"))
            .and_then(Json::as_str),
        Some("bad_request"),
        "{}",
        reply.to_line()
    );
    // The daemon closed this session (clean EOF or a reset, depending on
    // how much of the blob it left unread) but keeps serving new ones.
    let mut rest = String::new();
    assert!(
        matches!(sess.reader.read_line(&mut rest), Ok(0) | Err(_)),
        "session must end after the refusal"
    );
    let mut sess = Session::connect(server.addr());
    sess.expect_ok("{\"cmd\":\"metrics\"}");
    sess.expect_ok("{\"cmd\":\"bye\"}");
    server.begin_drain();
    server.wait();
}

/// The scripted client must end only on an actual `bye` command, not on
/// any request that merely contains the text "bye" (e.g. a tenant id).
#[test]
fn client_script_survives_a_tenant_named_bye() {
    let server = Server::start(DaemonConfig {
        listen: "127.0.0.1:0".into(),
        threads: 1,
        ..DaemonConfig::default()
    })
    .expect("start daemon");
    let script = "{\"cmd\":\"hello\",\"tenant\":\"bye\",\"alg\":\"morris\",\"seed\":1}\n\
                  {\"cmd\":\"ingest\",\"tenant\":\"bye\",\"updates\":[1,2,3]}\n\
                  {\"cmd\":\"query\",\"tenant\":\"bye\"}\n\
                  {\"cmd\":\"bye\"}\n\
                  # never sent: the session ended on the real bye above\n";
    let mut input = std::io::Cursor::new(script.as_bytes());
    let mut out = Vec::new();
    wb_daemon::client::run_script(
        &server.addr().to_string(),
        &mut input,
        &mut out,
        /* strict */ true,
        /* pipeline */ 1,
    )
    .expect("script passes");
    let replies: Vec<&str> = std::str::from_utf8(&out).unwrap().lines().collect();
    assert_eq!(
        replies.len(),
        4,
        "all four requests must run (no early exit on the 'bye' tenant id): {replies:?}"
    );
    server.begin_drain();
    server.wait();
}

#[test]
fn max_tenants_is_enforced_with_a_typed_error() {
    let server = Server::start(DaemonConfig {
        listen: "127.0.0.1:0".into(),
        threads: 1,
        max_tenants: 2,
        ..DaemonConfig::default()
    })
    .expect("start daemon");
    let mut sess = Session::connect(server.addr());
    sess.expect_ok("{\"cmd\":\"hello\",\"tenant\":\"a\",\"alg\":\"morris\",\"seed\":1}");
    sess.expect_ok("{\"cmd\":\"hello\",\"tenant\":\"b\",\"alg\":\"morris\",\"seed\":1}");
    let reply =
        sess.roundtrip("{\"cmd\":\"hello\",\"tenant\":\"c\",\"alg\":\"morris\",\"seed\":1}");
    assert_eq!(
        reply
            .get("error")
            .and_then(|e| e.get("kind"))
            .and_then(Json::as_str),
        Some("max_tenants")
    );
    // Re-hello to an existing tenant is idempotent, not a new tenant.
    sess.expect_ok("{\"cmd\":\"hello\",\"tenant\":\"a\",\"alg\":\"morris\",\"seed\":1}");
    sess.expect_ok("{\"cmd\":\"bye\"}");
    server.begin_drain();
    server.wait();
}

/// Regression: a `hello` racing a concurrent drain must not register a
/// tenant after the drain flag flips. The old code checked `draining` only
/// on entry; a drain beginning while the tenant was under construction
/// (outside the registry lock) still inserted it — a tenant the drain
/// would never have flushed. The fix re-checks the flag under the same
/// lock as the insert, so the outcome is a typed `draining` refusal.
///
/// The interleave is forced, not hoped for: the test holds the tenant
/// registry lock, lets the `hello` pass its entry check and block on that
/// lock, flips the drain flag, then releases the lock.
#[test]
fn hello_racing_a_drain_cannot_create_a_tenant() {
    let server = Server::start(DaemonConfig {
        listen: "127.0.0.1:0".into(),
        threads: 1,
        ..DaemonConfig::default()
    })
    .expect("start daemon");
    let addr = server.addr();
    let shared = std::sync::Arc::clone(server.shared());

    let guard = shared.tenants.lock().unwrap();
    let hello = std::thread::spawn(move || {
        let mut sess = Session::connect(addr);
        sess.roundtrip("{\"cmd\":\"hello\",\"tenant\":\"racer\",\"alg\":\"morris\",\"seed\":1}")
    });
    // Give the hello time to pass its entry-point draining check and block
    // on the registry lock we hold; then the drain begins.
    std::thread::sleep(std::time::Duration::from_millis(200));
    server.begin_drain();
    drop(guard);

    let reply = hello.join().expect("hello session");
    assert_eq!(
        reply
            .get("error")
            .and_then(|e| e.get("kind"))
            .and_then(Json::as_str),
        Some("draining"),
        "hello past the drain flip must be refused, got {}",
        reply.to_line()
    );
    assert!(
        shared.tenants.lock().unwrap().is_empty(),
        "no tenant may be registered after the drain flag flips"
    );
    let finals = server.wait();
    let tenants = finals.get("tenants").expect("tenants rollup");
    assert_eq!(tenants.get("count").and_then(Json::as_u64), Some(0));
}

/// Ingest deterministically per test: `count` inserts over a small
/// universe, offset so separate halves concatenate to one fixed stream.
fn insert_line(tenant: &str, from: u64, count: u64) -> String {
    let updates: Vec<String> = (from..from + count).map(|i| (i % 97).to_string()).collect();
    format!(
        "{{\"cmd\":\"ingest\",\"tenant\":\"{tenant}\",\"updates\":[{}]}}",
        updates.join(",")
    )
}

/// The tentpole end-to-end: `snapshot` a mid-stream tenant to disk over
/// the protocol, `restore` it into a *different* daemon process (fresh
/// `Server`), continue the stream there, and land on exactly the answer an
/// uninterrupted run produces. Both a flat (morris — RNG per update) and a
/// sharded (misra_gries) tenant cross the restart.
#[test]
fn protocol_snapshot_restore_continues_across_daemons() {
    let dir = std::env::temp_dir().join(format!("wbd-snap-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let algs = [("flat_t", "morris"), ("shard_t", "misra_gries")];

    // Uninterrupted reference: the full 600-update stream in one daemon.
    let mut reference = std::collections::BTreeMap::new();
    {
        let server = Server::start(DaemonConfig {
            listen: "127.0.0.1:0".into(),
            threads: 2,
            shards: 4,
            chunk: 64,
            ..DaemonConfig::default()
        })
        .expect("start reference daemon");
        let mut sess = Session::connect(server.addr());
        for (tenant, alg) in algs {
            sess.expect_ok(&format!(
                "{{\"cmd\":\"hello\",\"tenant\":\"{tenant}\",\"alg\":\"{alg}\",\"seed\":7,\"n\":1024}}"
            ));
            sess.expect_ok(&insert_line(tenant, 0, 600));
            let reply = sess.expect_ok(&format!("{{\"cmd\":\"query\",\"tenant\":\"{tenant}\"}}"));
            reference.insert(tenant, reply.get("answer").unwrap().to_line());
        }
        sess.expect_ok("{\"cmd\":\"bye\"}");
        server.begin_drain();
        server.wait();
    }

    // First daemon: half the stream, then snapshot each tenant to disk.
    {
        let server = Server::start(DaemonConfig {
            listen: "127.0.0.1:0".into(),
            threads: 2,
            shards: 4,
            chunk: 64,
            ..DaemonConfig::default()
        })
        .expect("start first daemon");
        let mut sess = Session::connect(server.addr());
        for (tenant, alg) in algs {
            sess.expect_ok(&format!(
                "{{\"cmd\":\"hello\",\"tenant\":\"{tenant}\",\"alg\":\"{alg}\",\"seed\":7,\"n\":1024}}"
            ));
            sess.expect_ok(&insert_line(tenant, 0, 250));
            let reply = sess.expect_ok(&format!(
                "{{\"cmd\":\"snapshot\",\"tenant\":\"{tenant}\",\"path\":\"{}/{tenant}.wbsnap\"}}",
                dir.display()
            ));
            assert_eq!(reply.get("applied").and_then(Json::as_u64), Some(250));
            assert!(reply.get("bytes").and_then(Json::as_u64).unwrap() > 0);
        }
        sess.expect_ok("{\"cmd\":\"bye\"}");
        server.begin_drain();
        server.wait();
    }

    // Second daemon (different chunk — transport must not matter): restore
    // from disk, finish the stream, compare answers byte-for-byte.
    {
        let server = Server::start(DaemonConfig {
            listen: "127.0.0.1:0".into(),
            threads: 1,
            shards: 4,
            chunk: 17,
            ..DaemonConfig::default()
        })
        .expect("start second daemon");
        let mut sess = Session::connect(server.addr());
        for (tenant, _alg) in algs {
            let reply = sess.expect_ok(&format!(
                "{{\"cmd\":\"restore\",\"path\":\"{}/{tenant}.wbsnap\"}}",
                dir.display()
            ));
            assert_eq!(reply.get("applied").and_then(Json::as_u64), Some(250));
            // Restoring over a live tenant is refused, typed.
            let dup = sess.roundtrip(&format!(
                "{{\"cmd\":\"restore\",\"path\":\"{}/{tenant}.wbsnap\"}}",
                dir.display()
            ));
            assert_eq!(
                dup.get("error")
                    .and_then(|e| e.get("kind"))
                    .and_then(Json::as_str),
                Some("tenant_mismatch")
            );
            sess.expect_ok(&insert_line(tenant, 250, 350));
            let reply = sess.expect_ok(&format!("{{\"cmd\":\"query\",\"tenant\":\"{tenant}\"}}"));
            assert_eq!(reply.get("processed").and_then(Json::as_u64), Some(600));
            assert_eq!(
                reply.get("answer").unwrap().to_line(),
                reference[tenant],
                "restored {tenant} must answer exactly as the uninterrupted run"
            );
        }
        // A missing file is a typed snapshot_failed, not a disconnect.
        let missing = sess.roundtrip(&format!(
            "{{\"cmd\":\"restore\",\"path\":\"{}/nope.wbsnap\"}}",
            dir.display()
        ));
        assert_eq!(
            missing
                .get("error")
                .and_then(|e| e.get("kind"))
                .and_then(Json::as_str),
            Some("snapshot_failed")
        );
        sess.expect_ok("{\"cmd\":\"bye\"}");
        server.begin_drain();
        server.wait();
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// `--state-dir` persistence: a drained daemon writes every tenant to its
/// state directory and a fresh daemon pointed at the same directory picks
/// them up before accepting — a full restart with no client-side snapshot
/// choreography. The continued stream must again match an uninterrupted
/// run byte-for-byte.
#[test]
fn state_dir_round_trips_tenants_across_restarts() {
    let dir = std::env::temp_dir().join(format!("wbd-state-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = || DaemonConfig {
        listen: "127.0.0.1:0".into(),
        threads: 2,
        shards: 4,
        chunk: 64,
        state_dir: Some(dir.display().to_string()),
        ..DaemonConfig::default()
    };

    // Uninterrupted reference (no persistence involved).
    let reference = {
        let server = Server::start(DaemonConfig {
            state_dir: None,
            ..cfg()
        })
        .expect("start reference daemon");
        let mut sess = Session::connect(server.addr());
        sess.expect_ok(
            "{\"cmd\":\"hello\",\"tenant\":\"durable\",\"alg\":\"space_saving\",\"seed\":11,\"n\":2048}",
        );
        sess.expect_ok(&insert_line("durable", 0, 700));
        let reply = sess.expect_ok("{\"cmd\":\"query\",\"tenant\":\"durable\"}");
        sess.expect_ok("{\"cmd\":\"bye\"}");
        server.begin_drain();
        server.wait();
        reply.get("answer").unwrap().to_line()
    };

    {
        let server = Server::start(cfg()).expect("start persisted daemon");
        let mut sess = Session::connect(server.addr());
        sess.expect_ok(
            "{\"cmd\":\"hello\",\"tenant\":\"durable\",\"alg\":\"space_saving\",\"seed\":11,\"n\":2048}",
        );
        sess.expect_ok(&insert_line("durable", 0, 300));
        sess.expect_ok("{\"cmd\":\"bye\"}");
        server.begin_drain();
        server.wait(); // drain persists to the state dir
    }
    assert!(
        std::fs::read_dir(&dir).unwrap().count() >= 1,
        "drain must leave a snapshot file behind"
    );

    {
        let server = Server::start(cfg()).expect("restart persisted daemon");
        let mut sess = Session::connect(server.addr());
        // The restored tenant answers hello idempotently (same alg + seed)
        // with its state intact — no re-creation.
        sess.expect_ok(
            "{\"cmd\":\"hello\",\"tenant\":\"durable\",\"alg\":\"space_saving\",\"seed\":11,\"n\":2048}",
        );
        let stats = sess.expect_ok("{\"cmd\":\"snapshot-stats\",\"tenant\":\"durable\"}");
        assert_eq!(
            stats
                .get("stats")
                .and_then(|s| s.get("applied"))
                .and_then(Json::as_u64),
            Some(300),
            "restart must restore mid-stream state: {}",
            stats.to_line()
        );
        sess.expect_ok(&insert_line("durable", 300, 400));
        let reply = sess.expect_ok("{\"cmd\":\"query\",\"tenant\":\"durable\"}");
        assert_eq!(
            reply.get("answer").unwrap().to_line(),
            reference,
            "stream continued across a restart must answer as uninterrupted"
        );
        sess.expect_ok("{\"cmd\":\"bye\"}");
        server.begin_drain();
        server.wait();
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Requests that trail a `shutdown` must still be served during the
/// drain, in both orderings a real client produces: pipelined (the whole
/// tail — ingest, query, shutdown, bye — goes out in one write, so the
/// trailing requests can sit unread in the kernel buffer behind the
/// parked ingest when the drain begins) and stop-and-wait (an idle
/// session sends `bye` only after the drain has already started). The
/// epoll reactor takes a final nonblocking read before a drain-idle
/// close and keeps idle sessions registered for a grace window; without
/// either, these clients see a broken pipe.
#[test]
fn requests_trailing_a_shutdown_are_served_during_drain() {
    let server = Server::start(DaemonConfig {
        listen: "127.0.0.1:0".into(),
        ..DaemonConfig::default()
    })
    .expect("start daemon");
    let addr = server.addr();

    // Opened (and hello'd) before the drain; it goes idle and must still
    // be answerable after the drain begins.
    let mut stopwait = Session::connect(addr);
    stopwait
        .expect_ok("{\"cmd\":\"hello\",\"tenant\":\"tail-wait\",\"alg\":\"morris\",\"seed\":3}");

    let mut pipelined = Session::connect(addr);
    pipelined
        .expect_ok("{\"cmd\":\"hello\",\"tenant\":\"tail-pipe\",\"alg\":\"morris\",\"seed\":3}");
    // One write for the whole tail: the ingest parks on the pool, so the
    // requests behind it — including the shutdown that starts the drain
    // and the bye behind *that* — arrive while read interest is off. The
    // drain-idle close must read them out instead of discarding them.
    pipelined
        .writer
        .write_all(
            b"{\"cmd\":\"ingest\",\"tenant\":\"tail-pipe\",\"updates\":[1,2,3,4,5]}\n\
              {\"cmd\":\"query\",\"tenant\":\"tail-pipe\"}\n\
              {\"cmd\":\"shutdown\"}\n\
              {\"cmd\":\"bye\"}\n",
        )
        .expect("send pipelined tail");
    let r1 = pipelined.read_reply();
    assert_eq!(
        r1.get("accepted").and_then(Json::as_u64),
        Some(5),
        "{}",
        r1.to_line()
    );
    let r2 = pipelined.read_reply();
    assert_eq!(
        r2.get("processed").and_then(Json::as_u64),
        Some(5),
        "query pipelined behind the ingest must still be answered: {}",
        r2.to_line()
    );
    let r3 = pipelined.read_reply();
    assert_eq!(
        r3.get("draining"),
        Some(&Json::Bool(true)),
        "shutdown must acknowledge the drain: {}",
        r3.to_line()
    );
    let r4 = pipelined.read_reply();
    assert_eq!(r4.get("ok"), Some(&Json::Bool(true)), "{}", r4.to_line());
    let mut rest = String::new();
    assert_eq!(
        pipelined
            .reader
            .read_line(&mut rest)
            .expect("post-bye read"),
        0,
        "session must close cleanly after bye"
    );

    // Stop-and-wait: the daemon is now draining and this session has been
    // idle the whole time; the grace window must keep it open long enough
    // to answer the bye.
    stopwait.expect_ok("{\"cmd\":\"bye\"}");
    let mut rest = String::new();
    assert_eq!(
        stopwait.reader.read_line(&mut rest).expect("post-bye read"),
        0,
        "session must close cleanly after bye"
    );

    let finals = server.wait();
    let tenants = finals.get("tenants").expect("tenants rollup");
    assert_eq!(tenants.get("accepted").and_then(Json::as_u64), Some(5));
    assert_eq!(
        tenants.get("applied").and_then(Json::as_u64),
        Some(5),
        "the drain must apply the batch accepted before it began"
    );
}
