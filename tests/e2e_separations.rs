//! End-to-end separations — the paper's headline comparisons asserted as
//! integration tests across crates.

use wbstream::core::rng::TranscriptRng;
use wbstream::core::space::SpaceUsage;
use wbstream::graph::{ExactNeighborhoods, HashedNeighborhoods, OrEqInstance, VertexArrival};
use wbstream::lowerbounds::{
    reduction_experiment, verify_counter, width_lower_bound, BucketCounter, ErrorBudget,
    ExactCounter,
};
use wbstream::sketch::ams::{find_aligned_items, AmsF2};
use wbstream::sketch::count_min::{forge_all_row_collisions, CountMin};
use wbstream::sketch::MedianMorris;

/// §1 motivation + Theorem 1.9's operational content: the classic sketches
/// that are fine against oblivious streams are broken by white-box access.
#[test]
fn classic_sketches_break_white_box_while_morris_does_not() {
    let mut rng = TranscriptRng::from_seed(2000);

    // AMS: adversary aligned with the published signs forces k× inflation.
    let mut ams = AmsF2::new(7, &mut rng);
    let aligned = find_aligned_items(&ams, 128, 1 << 15);
    assert!(aligned.len() >= 64);
    for &i in &aligned {
        ams.update(i, 1);
    }
    let inflation = ams.estimate() / aligned.len() as f64;
    assert!(inflation >= 64.0, "AMS inflation only {inflation}×");

    // CountMin: forged all-row collisions inflate a never-seen victim.
    let mut cm = CountMin::new(2, 16, &mut rng);
    let forged = forge_all_row_collisions(&cm, 0, 30, 100_000);
    assert!(forged.len() >= 10);
    for &i in &forged {
        cm.insert(i);
    }
    assert_eq!(cm.estimate(0), forged.len() as u64);

    // Morris: the same white-box access buys the adversary nothing — the
    // exponent says nothing about future coins. 50k adaptive increments
    // stay within tolerance.
    let mut morris = MedianMorris::new(0.2, 9);
    for _ in 0..50_000u64 {
        morris.increment(&mut rng);
    }
    let rel = (morris.estimate() - 50_000.0).abs() / 50_000.0;
    assert!(rel < 0.5, "Morris error {rel}");
}

/// Theorem 1.3 vs Theorem 1.4: O(n log n) randomized+crypto vs Θ(n²)
/// deterministic, on the OR-Equality instances that prove the bound.
#[test]
fn neighborhood_identification_space_separation() {
    let mut rng = TranscriptRng::from_seed(2001);
    let inst = OrEqInstance::random(128, 32, &[7], &mut rng);
    let nv = inst.graph_vertices();
    let mut hashed = HashedNeighborhoods::new(nv, &mut rng);
    let mut exact = ExactNeighborhoods::new(nv);
    for a in inst.to_vertex_stream() {
        hashed.insert(&a);
        exact.insert(&a);
    }
    // Both solve the instance…
    assert_eq!(inst.decode(&hashed.identical_groups()), inst.truth());
    assert_eq!(inst.decode(&exact.identical_groups()), inst.truth());
    // …but the deterministic baseline pays quadratically.
    assert!(
        exact.space_bits() > 2 * hashed.space_bits(),
        "exact {} vs hashed {}",
        exact.space_bits(),
        hashed.space_bits()
    );
}

/// Lemma 2.1 vs Theorem 1.11: randomized O(log log n) bits versus the
/// certified deterministic Ω(poly(n)) states, at the same horizon.
#[test]
fn counting_separation_random_vs_deterministic() {
    let n = 1u64 << 16;
    let (_, det_states) = width_lower_bound(n, ErrorBudget::Multiplicative(0.5));
    assert!(det_states >= 40, "certified bound {det_states} states");

    let mut rng = TranscriptRng::from_seed(2002);
    let mut morris = MedianMorris::new(0.2, 9);
    for _ in 0..n {
        morris.increment(&mut rng);
    }
    // 9 Morris exponents at n = 2^16 fit comfortably under the bits needed
    // for det_states states *per the certificate*… the separation widens
    // with n because Morris bits grow as log log n.
    assert!(morris.space_bits() < 9 * 16);
    let rel = (morris.estimate() - n as f64).abs() / n as f64;
    assert!(rel < 0.5, "Morris error {rel}");

    // And the concrete "deterministic Morris" with that few states fails.
    let det_attempt = BucketCounter {
        delta: 0.5,
        width: 16,
    };
    assert!(verify_counter(&det_attempt, 128, 0.5).is_err());
    assert!(verify_counter(&ExactCounter, 128, 0.5).is_ok());
}

/// Theorem 1.8's crossover measured end-to-end: below the deterministic
/// bound nothing derandomizes; above it everything does.
#[test]
fn derandomization_crossover() {
    let low = reduction_experiment(8, 2, 2, 48);
    let high = reduction_experiment(8, 9, 2, 48);
    assert!(low.derandomizable_fraction < 0.1);
    assert!(high.derandomizable_fraction > 0.95);
    assert_eq!(low.deterministic_bound, 7);
}

/// The two neighborhood algorithms agree on adversarially similar graphs
/// (every neighborhood differs in exactly one vertex — the hardest case
/// for hashing).
#[test]
fn neighborhood_agreement_on_near_identical_graphs() {
    let mut rng = TranscriptRng::from_seed(2003);
    let n = 64u64;
    let mut hashed = HashedNeighborhoods::new(n, &mut rng);
    let mut exact = ExactNeighborhoods::new(n);
    for v in 0..n {
        // Neighborhood = {0, 1, …, 7} with element (v mod 8) swapped out.
        let nb: Vec<u64> = (0..8).filter(|&u| u != v % 8).collect();
        let arrival = VertexArrival::new(v, nb);
        hashed.insert(&arrival);
        exact.insert(&arrival);
    }
    assert_eq!(hashed.identical_groups(), exact.identical_groups());
    // Eight groups of eight (v mod 8 classes).
    assert_eq!(exact.identical_groups().len(), 8);
}
