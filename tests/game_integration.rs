//! Cross-crate integration: every major algorithm of the paper survives
//! the white-box game against adaptive adversaries, driven through the
//! engine's fluent builder (`wb_engine::Game`).

use wbstream::core::game::{FnAdversary, ScriptAdversary};
use wbstream::core::referee::{ApproxCountReferee, HeavyHitterReferee, L0SandwichReferee};
use wbstream::core::rng::{RandTranscript, TranscriptRng};
use wbstream::core::stream::{InsertOnly, Turnstile};
use wbstream::engine::{Game, RecordingObserver};
use wbstream::sketch::hhh::{HhhReferee, RadixHierarchy, RobustHHH};
use wbstream::sketch::l0::{MatrixMode, SisL0Estimator};
use wbstream::sketch::{MedianMorris, RobustL1HeavyHitters};

#[test]
fn morris_survives_transcript_aware_adversary() {
    // The adversary reads the exponent of every Morris copy from the
    // white-box view and stops at the "worst-looking" moment; the referee
    // checks every prefix anyway.
    let adv = FnAdversary::new(
        |t: u64, alg: &MedianMorris, tr: &RandTranscript, _last: Option<&f64>| {
            // Exercise all transcript accessors while deciding.
            let _ = (tr.seed(), tr.draws(), tr.last());
            let spread = alg
                .counters()
                .iter()
                .map(|c| c.exponent())
                .max()
                .unwrap_or(0)
                - alg
                    .counters()
                    .iter()
                    .map(|c| c.exponent())
                    .min()
                    .unwrap_or(0);
            // Stop when copies disagree maximally (an "unlucky" state).
            if t > 10_000 && spread >= 6 {
                None
            } else {
                Some(InsertOnly(0))
            }
        },
    );
    let report = Game::new(MedianMorris::new(0.2, 9))
        .adversary(adv)
        .referee(ApproxCountReferee::new(0.5))
        .max_rounds(60_000)
        .seed(1001)
        .run();
    assert!(report.survived(), "{:?}", report.result.failure);
}

#[test]
fn robust_hh_survives_output_feedback_adversary() {
    // The adversary uses the last *output* (legal even in the black-box
    // model) plus the internal sampling state to steer mass away from
    // reported items — coverage of the genuinely heavy item must persist.
    let n = 1u64 << 12;
    let m = 1u64 << 14;
    let mut cursor = 100u64;
    let adv = FnAdversary::new(
        move |t: u64,
              _alg: &RobustL1HeavyHitters,
              _tr: &RandTranscript,
              last: Option<&Vec<(u64, f64)>>| {
            if t >= m {
                return None;
            }
            if t.is_multiple_of(2) {
                return Some(InsertOnly(3)); // heavy item, 50%
            }
            // Avoid every currently reported item.
            let reported: Vec<u64> = last
                .map(|l| l.iter().map(|&(i, _)| i).collect())
                .unwrap_or_default();
            while reported.contains(&cursor) {
                cursor = 100 + (cursor + 1) % (n - 100);
            }
            let item = cursor;
            cursor = 100 + (cursor + 1) % (n - 100);
            Some(InsertOnly(item))
        },
    );
    let (report, alg) = Game::new(RobustL1HeavyHitters::new(n, 0.125))
        .adversary(adv)
        .referee(HeavyHitterReferee::new(0.125, 0.125).with_grace(64))
        .max_rounds(m)
        .seed(1002)
        .play();
    assert!(report.survived(), "{:?}", report.result.failure);
    assert!(alg
        .heavy_hitters()
        .iter()
        .any(|&(i, est)| i == 3 && est > 0.3 * m as f64));
}

#[test]
fn sis_l0_survives_deletion_storm_adversary() {
    // Adversary inserts blocks then deletes exactly the coordinates whose
    // chunk sketches it can see are nonzero — maximal turnstile churn.
    let n = 1u64 << 10;
    let mut seed_rng = TranscriptRng::from_seed(1003);
    let alg = SisL0Estimator::new(n, 0.5, 0.25, MatrixMode::RandomOracle, &mut seed_rng);
    let factor = alg.approximation_factor() as f64;
    let adv = FnAdversary::new(
        move |t: u64, _alg: &SisL0Estimator, _tr: &RandTranscript, _last: Option<&u64>| {
            if t > 4096 {
                return None;
            }
            let base = (t / 256) * 131;
            Some(if t.is_multiple_of(2) {
                Turnstile::insert((base + t * 7) % n)
            } else {
                Turnstile::delete((base + (t - 1) * 7) % n)
            })
        },
    );
    let report = Game::new(alg)
        .adversary(adv)
        .referee(L0SandwichReferee::new(factor))
        .max_rounds(4096)
        .seed(1004)
        .run();
    assert!(report.survived(), "{:?}", report.result.failure);
}

#[test]
fn robust_hhh_survives_scripted_ddos_in_game() {
    let h = RadixHierarchy::new(8, 2);
    let m = 16_000u64;
    let script: Vec<InsertOnly> = (0..m)
        .map(|t| {
            InsertOnly(match t % 10 {
                0..=3 => 0xAB01,
                4..=6 => 0xCD00 | (t % 256),
                _ => (t.wrapping_mul(2654435761)) & 0xFFFF,
            })
        })
        .collect();
    let report = Game::new(RobustHHH::new(h, 0.05, 0.25))
        .adversary(ScriptAdversary::new(script))
        .referee(
            HhhReferee::new(h, 0.25, 0.10)
                .with_grace(1024)
                .with_stride(1009),
        )
        .max_rounds(m)
        .seed(1005)
        .run();
    assert!(report.survived(), "{:?}", report.result.failure);
}

#[test]
fn peak_space_tracks_the_heaviest_epoch() {
    // The report's peak-space accounting must be ≥ final space, and the
    // recorded space timeline must agree with the observer's full view.
    let n = 1u64 << 10;
    let script: Vec<InsertOnly> = (0..4096u64).map(|t| InsertOnly(t % 8)).collect();
    let mut obs = RecordingObserver::new();
    let report = Game::new(RobustL1HeavyHitters::new(n, 0.25))
        .adversary(ScriptAdversary::new(script))
        .referee(HeavyHitterReferee::new(0.25, 0.25).with_grace(32))
        .max_rounds(4096)
        .seed(1006)
        .observer(&mut obs)
        .run();
    assert!(report.survived());
    assert!(report.result.peak_space_bits >= report.result.final_space_bits);
    assert_eq!(obs.rounds.len(), 4096);
    let observed_peak = obs.rounds.iter().map(|r| r.space_bits).max().unwrap();
    assert_eq!(observed_peak, report.result.peak_space_bits);
    assert!(obs.rounds.iter().all(|r| r.correct));
}
