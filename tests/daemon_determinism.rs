//! The daemon's determinism contract, end to end over loopback:
//!
//! * every tenant's query answer is **byte-identical** to an offline
//!   engine run of the same stream with the same derived seeds
//!   (`derive_seed(base, ["tenant", id])`, then `["ctor"]` / `["game"]`),
//!   flat and sharded alike;
//! * the answers are invariant across server configurations — `--threads
//!   1` vs `4`, transport chunk 64 vs 256, **epoll reactor vs
//!   thread-per-session backend** — because per-tenant ordering plus the
//!   engine's chunk-invariance contract make concurrency (and the I/O
//!   multiplexing strategy) pure transport;
//! * protocol-level bad input dies with typed JSON errors, never a
//!   disconnect, on either backend: unknown algorithm, `n == 0`, unknown
//!   tenant, wrong model, out-of-range delta, hello mismatch, malformed
//!   request, over-quota ingest.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use wb_daemon::json::Json;
use wb_daemon::proto::answer_to_json;
use wb_daemon::{Backend, DaemonConfig, Server};
use wbstream::core::rng::{derive_seed, TranscriptRng};
use wbstream::engine::registry::{self, Params};
use wbstream::engine::shard::{probe_mergeable, Partition, ShardConfig, ShardPipeline};
use wbstream::engine::Update;

struct Session {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Session {
    fn connect(addr: SocketAddr) -> Session {
        let stream = TcpStream::connect(addr).expect("connect to wbd");
        Session {
            reader: BufReader::new(stream.try_clone().expect("clone stream")),
            writer: stream,
        }
    }

    fn roundtrip(&mut self, line: &str) -> Json {
        self.writer
            .write_all(line.as_bytes())
            .and_then(|_| self.writer.write_all(b"\n"))
            .expect("send request");
        let mut reply = String::new();
        let n = self.reader.read_line(&mut reply).expect("read reply");
        assert!(n > 0, "daemon closed the connection after {line:?}");
        Json::parse(reply.trim_end()).unwrap_or_else(|e| panic!("malformed reply {reply:?}: {e}"))
    }

    fn expect_ok(&mut self, line: &str) -> Json {
        let reply = self.roundtrip(line);
        assert_eq!(
            reply.get("ok"),
            Some(&Json::Bool(true)),
            "expected ok reply to {line:?}, got {}",
            reply.to_line()
        );
        reply
    }

    fn expect_error(&mut self, line: &str, kind: &str) -> Json {
        let reply = self.roundtrip(line);
        assert_eq!(
            reply.get("ok"),
            Some(&Json::Bool(false)),
            "{}",
            reply.to_line()
        );
        assert_eq!(
            reply
                .get("error")
                .and_then(|e| e.get("kind"))
                .and_then(Json::as_str),
            Some(kind),
            "expected a '{kind}' error for {line:?}, got {}",
            reply.to_line()
        );
        reply
    }
}

const SEED_BASE: u64 = 1234;
const DAEMON_SHARDS: usize = 4;

/// The determinism fleet: registry name, explicit shard override for
/// `hello`, and whether the stream uses turnstile updates.
const TENANTS: &[(&str, &str, Option<usize>, bool)] = &[
    ("det-mg", "misra_gries", None, false),
    ("det-ss", "space_saving", Some(2), false),
    ("det-cm", "count_min", None, false),
    ("det-l0", "exact_l0", None, true),
    ("det-ams", "ams_f2", Some(3), true),
    ("det-morris", "morris", None, false),
    ("det-mm", "median_morris", None, false),
];

/// The whole per-tenant stream, deterministic in the tenant tag only.
fn stream_for(tag: u64, turnstile: bool) -> Vec<Update> {
    (0..700u64)
        .map(|i| {
            let x = (tag * 999_983 + i * 2_654_435_761) % 1_024;
            if turnstile {
                let delta = if i % 5 == 4 { -2i64 } else { 3 };
                Update::Turnstile { item: x, delta }
            } else {
                Update::Insert(x)
            }
        })
        .collect()
}

fn update_json(u: &Update) -> String {
    match u {
        Update::Insert(x) => x.to_string(),
        Update::Turnstile { item, delta } => format!("[{item},{delta}]"),
    }
}

/// Replicate the daemon's per-tenant run offline: same seed derivation,
/// same flat/sharded decision, same snapshot-merge query path. Returns
/// the answer serialized exactly as the wire protocol would.
fn offline_answer(
    id: &str,
    alg: &str,
    shards_override: Option<usize>,
    updates: &[Update],
    chunk: usize,
) -> String {
    let tenant_seed = derive_seed(SEED_BASE, &["tenant", id]);
    let params = Params::default().with_seed(derive_seed(tenant_seed, &["ctor"]));
    let game_seed = derive_seed(tenant_seed, &["game"]);
    let ctor = |_: usize| registry::get(alg, &params);
    let wanted = shards_override.unwrap_or(DAEMON_SHARDS).max(1);
    let shards = if wanted > 1 && probe_mergeable(&ctor).unwrap() {
        wanted
    } else {
        1
    };
    let answer = if shards > 1 {
        let cfg = ShardConfig {
            shards,
            partition: Partition::Hash,
            threads: 1,
            batch: chunk,
            master_seed: game_seed,
        };
        let mut pipeline = ShardPipeline::new(&ctor, &cfg).unwrap();
        pipeline.push(updates);
        pipeline.snapshot_merged(&ctor).unwrap().query_dyn()
    } else {
        let mut alg = registry::get(alg, &params).unwrap();
        let mut rng = TranscriptRng::from_seed(game_seed);
        alg.process_batch_dyn(updates, &mut rng).unwrap();
        alg.query_dyn()
    };
    answer_to_json(&answer).to_line()
}

/// Run the whole fleet against one server configuration; tenants are
/// driven concurrently (one session each), batches split at `wire_batch`.
/// Returns `(tenant id, answer json, tenant_seed, shards)` sorted by id.
/// (On non-Linux hosts `Backend::Epoll` degrades to the thread backend,
/// so the cross-backend comparison is vacuous there but still compiles
/// and runs.)
fn run_fleet(
    backend: Backend,
    threads: usize,
    chunk: usize,
    wire_batch: usize,
) -> Vec<(String, String, u64, u64)> {
    let server = Server::start(DaemonConfig {
        listen: "127.0.0.1:0".into(),
        backend,
        threads,
        shards: DAEMON_SHARDS,
        chunk,
        seed: 42, // irrelevant: every hello declares its own seed base
        ..DaemonConfig::default()
    })
    .expect("start daemon");
    let addr = server.addr();
    let handles: Vec<_> = TENANTS
        .iter()
        .enumerate()
        .map(|(tag, &(id, alg, shards_override, turnstile))| {
            std::thread::spawn(move || {
                let mut sess = Session::connect(addr);
                let shards_field = shards_override
                    .map(|s| format!(",\"shards\":{s}"))
                    .unwrap_or_default();
                let hello = format!(
                    "{{\"cmd\":\"hello\",\"tenant\":\"{id}\",\"alg\":\"{alg}\",\
                     \"seed\":{SEED_BASE}{shards_field}}}"
                );
                let reply = sess.expect_ok(&hello);
                let tenant_seed = reply.get("tenant_seed").and_then(Json::as_u64).unwrap();
                let shards = reply.get("shards").and_then(Json::as_u64).unwrap();
                let updates = stream_for(tag as u64, turnstile);
                for batch in updates.chunks(wire_batch) {
                    let body: Vec<String> = batch.iter().map(update_json).collect();
                    let line = format!(
                        "{{\"cmd\":\"ingest\",\"tenant\":\"{id}\",\"updates\":[{}]}}",
                        body.join(",")
                    );
                    sess.expect_ok(&line);
                }
                let reply = sess.expect_ok(&format!("{{\"cmd\":\"query\",\"tenant\":\"{id}\"}}"));
                assert_eq!(
                    reply.get("processed").and_then(Json::as_u64),
                    Some(updates.len() as u64)
                );
                let answer = reply.get("answer").expect("answer").to_line();
                sess.expect_ok("{\"cmd\":\"bye\"}");
                (id.to_string(), answer, tenant_seed, shards)
            })
        })
        .collect();
    let mut results: Vec<_> = handles
        .into_iter()
        .map(|h| h.join().expect("tenant thread"))
        .collect();
    results.sort();
    server.begin_drain();
    let finals = server.wait();
    let tenants = finals.get("tenants").expect("rollup");
    assert_eq!(tenants.get("applied"), tenants.get("accepted"));
    results
}

#[test]
fn daemon_answers_match_offline_runs_and_are_config_invariant() {
    // Four deliberately different servers: {thread, epoll} backends ×
    // {single-threaded small transport chunks, 4 workers large ones}.
    let run_a = run_fleet(Backend::Thread, 1, 64, 50);
    let run_b = run_fleet(Backend::Thread, 4, 256, 700);
    let run_c = run_fleet(Backend::Epoll, 1, 64, 50);
    let run_d = run_fleet(Backend::Epoll, 4, 256, 700);
    assert_eq!(
        run_a, run_b,
        "daemon answers must be invariant across --threads and chunk sizes"
    );
    assert_eq!(
        run_a, run_c,
        "the epoll reactor must answer byte-identically to the thread backend"
    );
    assert_eq!(
        run_c, run_d,
        "reactor answers must be invariant across --threads and chunk sizes"
    );
    for (tag, &(id, alg, shards_override, turnstile)) in TENANTS.iter().enumerate() {
        let updates = stream_for(tag as u64, turnstile);
        // The offline ShardConfig batch mirrors run_a's chunk; equality
        // with run_b (chunk 256) already proves batch is pure transport.
        let expected = offline_answer(id, alg, shards_override, &updates, 64);
        let (rid, answer, tenant_seed, _) = &run_a[run_a
            .binary_search_by(|probe| probe.0.as_str().cmp(id))
            .expect("tenant present")];
        assert_eq!(rid, id);
        assert_eq!(
            *tenant_seed,
            derive_seed(SEED_BASE, &["tenant", id]),
            "hello must echo the derived tenant seed"
        );
        assert_eq!(
            *answer, expected,
            "{id} ({alg}): daemon answer must be byte-identical to the offline run"
        );
    }
}

#[test]
fn protocol_rejections_are_typed_and_keep_the_session_alive() {
    for backend in [Backend::Thread, Backend::Epoll] {
        rejection_sweep(backend);
    }
}

fn rejection_sweep(backend: Backend) {
    let server = Server::start(DaemonConfig {
        listen: "127.0.0.1:0".into(),
        backend,
        threads: 1,
        ..DaemonConfig::default()
    })
    .expect("start daemon");
    let mut sess = Session::connect(server.addr());

    // Malformed requests: still a reply, still a session.
    sess.expect_error("this is not json", "bad_request");
    sess.expect_error("{\"cmd\":\"frobnicate\"}", "bad_request");
    sess.expect_error(
        "{\"cmd\":\"hello\",\"tenant\":\"\",\"alg\":\"morris\"}",
        "bad_request",
    );
    sess.expect_error(
        "{\"cmd\":\"ingest\",\"tenant\":\"x\",\"updates\":[{\"item\":1}]}",
        "bad_request",
    );

    // Unknown algorithm and invalid constructor parameters.
    let err = sess.expect_error(
        "{\"cmd\":\"hello\",\"tenant\":\"t\",\"alg\":\"no_such_alg\",\"seed\":1}",
        "invalid_parameter",
    );
    let msg = err
        .get("error")
        .and_then(|e| e.get("message"))
        .and_then(Json::as_str)
        .unwrap();
    assert!(msg.contains("no_such_alg"), "{msg}");
    sess.expect_error(
        "{\"cmd\":\"hello\",\"tenant\":\"t\",\"alg\":\"misra_gries\",\"seed\":1,\"n\":0}",
        "invalid_parameter",
    );

    // Operations on a tenant that never said hello.
    sess.expect_error(
        "{\"cmd\":\"ingest\",\"tenant\":\"ghost\",\"updates\":[1]}",
        "unknown_tenant",
    );
    sess.expect_error("{\"cmd\":\"query\",\"tenant\":\"ghost\"}", "unknown_tenant");

    // Model violations against a live insert-only tenant: deletions and
    // over-budget deltas are refused all-or-nothing, with the offending
    // index named, and the rejected counter records the whole batch.
    sess.expect_ok("{\"cmd\":\"hello\",\"tenant\":\"t\",\"alg\":\"misra_gries\",\"seed\":1}");
    let err = sess.expect_error(
        "{\"cmd\":\"ingest\",\"tenant\":\"t\",\"updates\":[5,[6,-1]]}",
        "wrong_model",
    );
    let msg = err
        .get("error")
        .and_then(|e| e.get("message"))
        .and_then(Json::as_str)
        .unwrap();
    assert!(msg.contains("updates[1]"), "{msg}");
    sess.expect_error(
        "{\"cmd\":\"ingest\",\"tenant\":\"t\",\"updates\":[[7,1048577]]}",
        "wrong_model",
    );
    let stats = sess.expect_ok("{\"cmd\":\"snapshot-stats\",\"tenant\":\"t\"}");
    let st = stats.get("stats").expect("stats payload");
    assert_eq!(st.get("accepted").and_then(Json::as_u64), Some(0));
    assert_eq!(st.get("rejected").and_then(Json::as_u64), Some(3));

    // Re-hello must redeclare the same identity.
    sess.expect_error(
        "{\"cmd\":\"hello\",\"tenant\":\"t\",\"alg\":\"morris\",\"seed\":1}",
        "tenant_mismatch",
    );
    sess.expect_error(
        "{\"cmd\":\"hello\",\"tenant\":\"t\",\"alg\":\"misra_gries\",\"seed\":2}",
        "tenant_mismatch",
    );

    // The tenant survived every rejection: a clean batch still lands.
    let reply = sess.expect_ok("{\"cmd\":\"ingest\",\"tenant\":\"t\",\"updates\":[1,2,1]}");
    assert_eq!(reply.get("accepted").and_then(Json::as_u64), Some(3));
    let reply = sess.expect_ok("{\"cmd\":\"query\",\"tenant\":\"t\"}");
    assert_eq!(reply.get("processed").and_then(Json::as_u64), Some(3));
    sess.expect_ok("{\"cmd\":\"bye\"}");
    server.begin_drain();
    server.wait();
}

/// `--max-updates-per-tenant`: admission-time quota enforcement. An
/// over-quota batch is refused all-or-nothing with a typed
/// `quota_exceeded` error, the session and tenant survive, the refused
/// batch counts as rejected, and a later batch that fits still lands.
#[test]
fn ingest_quota_is_enforced_with_a_typed_error() {
    for backend in [Backend::Thread, Backend::Epoll] {
        let server = Server::start(DaemonConfig {
            listen: "127.0.0.1:0".into(),
            backend,
            threads: 1,
            max_updates_per_tenant: 10,
            ..DaemonConfig::default()
        })
        .expect("start daemon");
        let mut sess = Session::connect(server.addr());
        sess.expect_ok("{\"cmd\":\"hello\",\"tenant\":\"q\",\"alg\":\"morris\",\"seed\":1}");
        let reply =
            sess.expect_ok("{\"cmd\":\"ingest\",\"tenant\":\"q\",\"updates\":[1,2,3,4,5,6,7,8]}");
        assert_eq!(reply.get("accepted").and_then(Json::as_u64), Some(8));
        // 8 + 5 > 10: refused whole, with the arithmetic in the message.
        let err = sess.expect_error(
            "{\"cmd\":\"ingest\",\"tenant\":\"q\",\"updates\":[1,2,3,4,5]}",
            "quota_exceeded",
        );
        let msg = err
            .get("error")
            .and_then(|e| e.get("message"))
            .and_then(Json::as_str)
            .unwrap();
        assert!(msg.contains("10-update quota"), "{msg}");
        // The session and the tenant both survived: a batch that fits the
        // remaining headroom lands exactly at the quota...
        let reply = sess.expect_ok("{\"cmd\":\"ingest\",\"tenant\":\"q\",\"updates\":[9,10]}");
        assert_eq!(reply.get("accepted").and_then(Json::as_u64), Some(2));
        // ...and once full, even a single update is refused.
        sess.expect_error(
            "{\"cmd\":\"ingest\",\"tenant\":\"q\",\"updates\":[11]}",
            "quota_exceeded",
        );
        let stats = sess.expect_ok("{\"cmd\":\"snapshot-stats\",\"tenant\":\"q\"}");
        let st = stats.get("stats").expect("stats payload");
        assert_eq!(st.get("accepted").and_then(Json::as_u64), Some(10));
        assert_eq!(st.get("rejected").and_then(Json::as_u64), Some(6));
        sess.expect_ok("{\"cmd\":\"bye\"}");
        server.begin_drain();
        let finals = server.wait();
        let tenants = finals.get("tenants").expect("rollup");
        assert_eq!(tenants.get("applied").and_then(Json::as_u64), Some(10));
        assert_eq!(tenants.get("rejected").and_then(Json::as_u64), Some(6));
    }
}
