//! Reactor soak: 1000 concurrent pipelined sessions against a single
//! epoll reactor thread.
//!
//! Each session owns one tenant and writes its whole conversation after
//! `hello` — two ingests, a query, and `bye` — in **one** pipelined
//! write, then reads the four replies back. The checks are exactly the
//! reactor's contract:
//!
//! * no reply is lost and replies arrive in per-session request order
//!   (positional matching is the pipelining protocol);
//! * all 1000 sessions are registered with the reactor simultaneously
//!   (`reactor.sessions_peak`), i.e. the load is concurrent, not serial;
//! * the graceful drain loses nothing: `applied == accepted` globally.
//!
//! The driver is deliberately single-threaded: phases (connect+hello all,
//! write all, read all) force every session to be open at once without
//! needing 1000 client threads. Linux-only — the test is *about* the
//! epoll backend.

#![cfg(target_os = "linux")]

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use wb_daemon::json::Json;
use wb_daemon::{Backend, DaemonConfig, Server};

const SESSIONS: usize = 1000;
const FIRST_BATCH: u64 = 60;
const SECOND_BATCH: u64 = 40;

fn read_json(reader: &mut BufReader<TcpStream>, what: &str) -> Json {
    let mut reply = String::new();
    let n = reader.read_line(&mut reply).expect("read reply");
    assert!(n > 0, "daemon closed the connection before {what}");
    Json::parse(reply.trim_end()).unwrap_or_else(|e| panic!("malformed {what} {reply:?}: {e}"))
}

fn expect_ok(reply: &Json, what: &str) {
    assert_eq!(
        reply.get("ok"),
        Some(&Json::Bool(true)),
        "{what}: {}",
        reply.to_line()
    );
}

/// The ingest line for session `s`: `count` inserts over a small universe,
/// offset so the two batches concatenate to one fixed 100-update stream.
fn ingest_line(tenant: &str, s: u64, from: u64, count: u64) -> String {
    let updates: Vec<String> = (from..from + count)
        .map(|i| ((s * 131 + i * 2_654_435_761) % 509).to_string())
        .collect();
    format!(
        "{{\"cmd\":\"ingest\",\"tenant\":\"{tenant}\",\"updates\":[{}]}}",
        updates.join(",")
    )
}

#[test]
fn thousand_pipelined_sessions_on_one_reactor_thread() {
    let server = Server::start(DaemonConfig {
        listen: "127.0.0.1:0".into(),
        backend: Backend::Epoll,
        threads: 2,
        shards: 1,
        chunk: 64,
        ..DaemonConfig::default()
    })
    .expect("start daemon");
    let addr = server.addr();

    // Phase 1: open every session and say hello. Reading each hello reply
    // before moving on guarantees the session is registered with the
    // reactor, so by the end of the loop all 1000 coexist.
    let mut sessions: Vec<(BufReader<TcpStream>, TcpStream, String)> = Vec::with_capacity(SESSIONS);
    for s in 0..SESSIONS {
        let stream = TcpStream::connect(addr).expect("connect");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut writer = stream;
        let tenant = format!("soak-{s:04}");
        writer
            .write_all(
                format!(
                    "{{\"cmd\":\"hello\",\"tenant\":\"{tenant}\",\"alg\":\"morris\",\"seed\":5}}\n"
                )
                .as_bytes(),
            )
            .expect("send hello");
        let reply = read_json(&mut reader, "hello reply");
        expect_ok(&reply, &tenant);
        sessions.push((reader, writer, tenant));
    }

    // All 1000 sessions are live right now: the daemon must say so, and
    // must be running the epoll backend (not a silent fallback).
    {
        let stream = TcpStream::connect(addr).expect("connect metrics session");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut writer = stream;
        writer
            .write_all(b"{\"cmd\":\"metrics\"}\n{\"cmd\":\"bye\"}\n")
            .expect("send metrics");
        let reply = read_json(&mut reader, "metrics reply");
        expect_ok(&reply, "metrics");
        let m = reply.get("metrics").expect("metrics payload");
        assert_eq!(m.get("backend").and_then(Json::as_str), Some("epoll"));
        let active = m
            .get("sessions")
            .and_then(|s| s.get("active"))
            .and_then(Json::as_u64)
            .unwrap();
        assert!(active >= SESSIONS as u64, "only {active} sessions active");
        let registered = m
            .get("reactor")
            .and_then(|r| r.get("registered"))
            .and_then(Json::as_u64)
            .unwrap();
        assert!(
            registered >= SESSIONS as u64,
            "only {registered} sessions registered with the reactor"
        );
        read_json(&mut reader, "bye reply");
    }

    // Phase 2: every session writes its entire remaining conversation in
    // one pipelined block — the reactor parks ingests mid-line-buffer and
    // must still answer strictly in order.
    for (s, (_, writer, tenant)) in sessions.iter_mut().enumerate() {
        let block = format!(
            "{}\n{}\n{{\"cmd\":\"query\",\"tenant\":\"{tenant}\"}}\n{{\"cmd\":\"bye\"}}\n",
            ingest_line(tenant, s as u64, 0, FIRST_BATCH),
            ingest_line(tenant, s as u64, FIRST_BATCH, SECOND_BATCH),
        );
        writer.write_all(block.as_bytes()).expect("send block");
    }

    // Phase 3: read the four replies per session. Positional matching IS
    // the pipelining contract — any lost, duplicated, or reordered reply
    // shows up as the wrong `accepted`/`processed` value here.
    for (s, (reader, _, tenant)) in sessions.iter_mut().enumerate() {
        let r1 = read_json(reader, "first ingest reply");
        expect_ok(&r1, tenant);
        assert_eq!(
            r1.get("accepted").and_then(Json::as_u64),
            Some(FIRST_BATCH),
            "session {s}"
        );
        let r2 = read_json(reader, "second ingest reply");
        expect_ok(&r2, tenant);
        assert_eq!(
            r2.get("accepted").and_then(Json::as_u64),
            Some(SECOND_BATCH),
            "session {s}"
        );
        let r3 = read_json(reader, "query reply");
        expect_ok(&r3, tenant);
        assert_eq!(
            r3.get("processed").and_then(Json::as_u64),
            Some(FIRST_BATCH + SECOND_BATCH),
            "session {s}: query must be quiescent and ordered after both ingests"
        );
        let r4 = read_json(reader, "bye reply");
        expect_ok(&r4, tenant);
        // bye closes the session server-side: next read must be EOF.
        let mut rest = String::new();
        assert_eq!(
            reader.read_line(&mut rest).expect("post-bye read"),
            0,
            "session {s} must close after bye"
        );
    }

    server.begin_drain();
    let finals = server.wait();
    let total = (SESSIONS as u64) * (FIRST_BATCH + SECOND_BATCH);
    let tenants = finals.get("tenants").expect("tenants rollup");
    assert_eq!(
        tenants.get("count").and_then(Json::as_u64),
        Some(SESSIONS as u64)
    );
    assert_eq!(tenants.get("accepted").and_then(Json::as_u64), Some(total));
    assert_eq!(
        tenants.get("applied").and_then(Json::as_u64),
        Some(total),
        "graceful drain must apply every accepted update"
    );
    assert_eq!(tenants.get("rejected").and_then(Json::as_u64), Some(0));
    let sessions_m = finals.get("sessions").expect("session stats");
    assert_eq!(sessions_m.get("opened"), sessions_m.get("closed"));
    let reactor = finals.get("reactor").expect("reactor stats");
    assert!(
        reactor.get("sessions_peak").and_then(Json::as_u64).unwrap() >= SESSIONS as u64,
        "the reactor must have held all sessions concurrently: {}",
        reactor.to_line()
    );
    assert_eq!(
        reactor.get("registered").and_then(Json::as_u64),
        Some(0),
        "every session deregistered by the end of the drain"
    );
    assert_eq!(
        reactor.get("write_queue_bytes").and_then(Json::as_u64),
        Some(0),
        "no bytes may remain queued after the drain"
    );
}
