//! Satellite of the tournament tentpole: every algorithm in the registry
//! must be *playable* against every registered adversary — constructible
//! from its `(name, Params)` pair and able to complete at least one round
//! of the erased white-box game. Catches an algorithm added to the
//! registry but unplayable against some adversary (wrong update model,
//! universe assert, constructor panic).

use wb_engine::erased::run_erased;
use wb_engine::referee::RefereeSpec;
use wb_engine::registry::{self, Params};

#[test]
fn every_algorithm_plays_every_adversary() {
    let params = Params::default().with_n(1 << 10).with_m(64);
    let algs = registry::names();
    let adversaries = registry::adversary_names();
    assert!(algs.len() >= 12, "registry shrank to {}", algs.len());
    assert!(
        adversaries.len() >= 5,
        "only {} adversaries",
        adversaries.len()
    );

    for alg_name in &algs {
        for adv_name in &adversaries {
            let mut alg = registry::get(alg_name, &params)
                .unwrap_or_else(|e| panic!("{alg_name}: construction failed: {e}"));
            let mut adv = registry::adversary(adv_name, &params)
                .unwrap_or_else(|e| panic!("{adv_name}: construction failed: {e}"));
            // Accept-all referee: this test measures playability, not the
            // correctness guarantee (the tournament measures that).
            let mut referee = RefereeSpec::Accept.build();
            let report = run_erased(alg.as_mut(), adv.as_mut(), referee.as_mut(), 64, 3)
                .unwrap_or_else(|e| panic!("{alg_name} vs {adv_name}: {e}"));
            assert!(
                report.result.rounds >= 1,
                "{alg_name} vs {adv_name} completed zero rounds"
            );
            assert!(report.survived(), "{alg_name} vs {adv_name} under Accept");
        }
    }
}

#[test]
fn erased_games_are_send() {
    // Compile-time satellite of the Send audit: a fully erased game
    // (algorithm + adversary + referee) must be movable to a worker thread.
    fn assert_send<T: Send>(_: &T) {}
    let params = Params::default().with_n(1 << 10).with_m(16);
    let alg = registry::get("robust_hh", &params).unwrap();
    let adv = registry::adversary("hh_evader", &params).unwrap();
    let referee = RefereeSpec::Accept.build();
    assert_send(&alg);
    assert_send(&adv);
    assert_send(&referee);
    std::thread::spawn(move || {
        let (mut alg, mut adv, mut referee) = (alg, adv, referee);
        run_erased(alg.as_mut(), adv.as_mut(), referee.as_mut(), 8, 1).unwrap()
    })
    .join()
    .unwrap();
}
