//! Property-based tests for strings and linear algebra.

use proptest::prelude::*;
use wbstream::core::rng::TranscriptRng;
use wbstream::crypto::crhf::{DlExpHash, DlExpParams};
use wbstream::linalg::{rank, EntryUpdate, ExactRankDecision, RankDecisionSketch, ZqMatrix};
use wbstream::strings::period::{is_period, period};
use wbstream::strings::{naive_find_all, StreamingPatternMatcher};

fn dl_params(seed: u64, base: u64) -> DlExpParams {
    let mut rng = TranscriptRng::from_seed(seed);
    DlExpParams::generate(40, base, &mut rng)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn dlexp_concat_law_holds(u in proptest::collection::vec(0u64..4, 0..40),
                              v in proptest::collection::vec(0u64..4, 0..40)) {
        let params = dl_params(50, 4);
        let mut hu = DlExpHash::new(params);
        u.iter().for_each(|&c| hu.absorb(c));
        let mut hv = DlExpHash::new(params);
        v.iter().for_each(|&c| hv.absorb(c));
        let mut huv = DlExpHash::new(params);
        u.iter().chain(v.iter()).for_each(|&c| huv.absorb(c));
        let composed = hu.concat(&hv);
        prop_assert_eq!(composed.value(), huv.value());
        prop_assert_eq!(composed.len(), (u.len() + v.len()) as u64);
    }

    #[test]
    fn period_is_minimal_valid_period(s in proptest::collection::vec(0u64..3, 1..50)) {
        let p = period(&s);
        prop_assert!(p >= 1 && p <= s.len());
        prop_assert!(is_period(&s, p));
        for smaller in 1..p {
            prop_assert!(!is_period(&s, smaller));
        }
    }

    #[test]
    fn matcher_never_reports_false_positives(
        pattern in proptest::collection::vec(0u64..3, 1..8),
        text in proptest::collection::vec(0u64..3, 0..150),
    ) {
        let params = dl_params(51, 3);
        let mut m = StreamingPatternMatcher::new(&pattern, params);
        for &c in &text {
            m.push(c);
        }
        let naive = naive_find_all(&pattern, &text);
        for &pos in m.matches() {
            prop_assert!(naive.contains(&pos), "false positive at {pos}");
        }
    }

    #[test]
    fn matcher_is_exact_for_aperiodic_patterns(
        // Patterns ending in a symbol not occurring earlier are unbordered,
        // so the single-chain pseudocode is lossless.
        prefix in proptest::collection::vec(0u64..2, 1..6),
        text in proptest::collection::vec(0u64..3, 0..150),
    ) {
        let mut pattern = prefix;
        pattern.push(2); // unique terminal symbol ⇒ unbordered
        let params = dl_params(52, 3);
        let mut m = StreamingPatternMatcher::new(&pattern, params);
        for &c in &text {
            m.push(c);
        }
        let naive = naive_find_all(&pattern, &text);
        prop_assert_eq!(m.matches(), &naive[..]);
    }

    #[test]
    fn rank_is_invariant_under_row_swaps(rows in proptest::collection::vec(
        proptest::collection::vec(-4i64..=4, 5), 2..6), i in 0usize..6, j in 0usize..6) {
        let m = ZqMatrix::from_rows(1_000_003, &rows);
        let r1 = rank(&m);
        let mut swapped = rows.clone();
        let (a, b) = (i % rows.len(), j % rows.len());
        swapped.swap(a, b);
        let m2 = ZqMatrix::from_rows(1_000_003, &swapped);
        prop_assert_eq!(r1, rank(&m2));
    }

    #[test]
    fn rank_of_outer_product_sum_is_at_most_terms(
        terms in 1usize..4,
        seed in 0u64..1000,
    ) {
        let n = 5;
        let mut rng = TranscriptRng::from_seed(seed);
        let mut rows = vec![vec![0i64; n]; n];
        for _ in 0..terms {
            let u: Vec<i64> = (0..n).map(|_| rng.below(7) as i64 - 3).collect();
            let v: Vec<i64> = (0..n).map(|_| rng.below(7) as i64 - 3).collect();
            for i in 0..n {
                for j in 0..n {
                    rows[i][j] += u[i] * v[j];
                }
            }
        }
        let m = ZqMatrix::from_rows(1_000_003, &rows);
        prop_assert!(rank(&m) <= terms);
    }

    #[test]
    fn rank_sketch_agrees_with_exact_on_random_updates(
        updates in proptest::collection::vec((0usize..5, 0usize..5, -3i64..=3), 1..40),
        k in 1usize..5,
    ) {
        let n = 5;
        let mut sk = RankDecisionSketch::new(n, k, b"prop-rank");
        let mut ex = ExactRankDecision::new(n, k);
        for &(row, col, delta) in &updates {
            let u = EntryUpdate { row, col, delta };
            sk.update(u);
            ex.update(u);
        }
        prop_assert_eq!(sk.rank_at_least_k(), ex.rank_at_least_k());
    }
}
