//! Merge equivalence: for every `Mergeable` registry algorithm, sharded
//! ingestion (partition across S instances, batched per-shard ingest,
//! deterministic reduction-tree merge) must answer within the **same
//! referee guarantee** as single-stream ingestion of the identical update
//! sequence — for 1, 2, 4, and 8 shards and both partition rules. The
//! linear sketches are held to the stronger bar of exact answer equality
//! (their merge is addition, so nothing may drift at all).

use proptest::prelude::*;
use wbstream::core::rng::TranscriptRng;
use wbstream::engine::registry::{self, Params};
use wbstream::engine::shard::{ingest_sharded, probe_mergeable, Partition, ShardConfig};
use wbstream::engine::{Answer, RefereeSpec, Update};

/// Mergeable registry algorithms whose merge is exact (linear state):
/// sharded answers must equal single-stream answers bit-for-bit.
const LINEAR: &[&str] = &["count_min", "ams_f2", "exact_l0"];

/// Mergeable counter summaries: sharded answers drift within the
/// mergeable-summaries error bound and are checked against the same
/// heavy-hitter referee guarantee as single-stream ingestion.
const COUNTER: &[&str] = &["misra_gries", "space_saving"];

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn params() -> Params {
    Params::default().with_n(64).with_m_guess(1 << 10)
}

/// Ingest single-stream through the same batched erased path the shard
/// pipeline uses (same chunking, same derived shard-0 seed), so the only
/// difference under test is partitioning + merging.
fn single_answer(name: &str, updates: &[Update], cfg: &ShardConfig) -> Answer {
    let p = params();
    let mut alg = registry::get(name, &p).unwrap();
    let mut rng = TranscriptRng::from_seed(cfg.shard_seed(0));
    for chunk in updates.chunks(cfg.batch) {
        alg.process_batch_dyn(chunk, &mut rng)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
    }
    alg.query_dyn()
}

fn sharded_answer(name: &str, updates: &[Update], cfg: &ShardConfig) -> Answer {
    let p = params();
    let out = ingest_sharded(&|_| registry::get(name, &p), updates, cfg)
        .unwrap_or_else(|e| panic!("{name}: {e}"));
    out.merged.query_dyn()
}

/// The referee guarding the counter summaries' guarantee, matching the
/// tournament's calibration.
fn hh_referee() -> RefereeSpec {
    let p = params();
    RefereeSpec::HeavyHitters {
        eps: p.eps,
        tol: p.eps,
        phi: None,
        grace: 64,
    }
}

fn shard_config(shards: usize, partition: Partition, seed: u64) -> ShardConfig {
    ShardConfig {
        shards,
        partition,
        threads: 2,
        batch: 128,
        master_seed: seed,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn linear_sketches_merge_exactly(
        items in proptest::collection::vec(0u64..64, 64..400),
        seed in 0u64..1000,
    ) {
        let updates: Vec<Update> = items.iter().map(|&i| Update::Insert(i)).collect();
        for name in LINEAR {
            for shards in SHARD_COUNTS {
                for partition in [Partition::Hash, Partition::RoundRobin] {
                    let cfg = shard_config(shards, partition, seed);
                    assert_eq!(
                        sharded_answer(name, &updates, &cfg),
                        single_answer(name, &updates, &cfg),
                        "{name} diverged at {shards} shards ({partition:?})"
                    );
                }
            }
        }
    }

    #[test]
    fn linear_turnstile_sketches_merge_exactly_with_deletions(
        raw in proptest::collection::vec((0u64..64, -3i64..=3), 64..300),
        seed in 0u64..1000,
    ) {
        let updates: Vec<Update> = raw
            .iter()
            .map(|&(item, delta)| Update::Turnstile {
                item,
                delta: if delta == 0 { 1 } else { delta },
            })
            .collect();
        for name in ["ams_f2", "exact_l0"] {
            for shards in SHARD_COUNTS {
                let cfg = shard_config(shards, Partition::RoundRobin, seed);
                assert_eq!(
                    sharded_answer(name, &updates, &cfg),
                    single_answer(name, &updates, &cfg),
                    "{name} diverged at {shards} shards"
                );
            }
        }
    }

    #[test]
    fn counter_summaries_merge_within_the_referee_guarantee(
        items in proptest::collection::vec(0u64..64, 100..400),
        hot_share in 2u64..5,
        seed in 0u64..1000,
    ) {
        // Plant a genuinely heavy item so the coverage clause has teeth.
        let updates: Vec<Update> = items
            .iter()
            .enumerate()
            .map(|(j, &i)| {
                Update::Insert(if (j as u64).is_multiple_of(hot_share) {
                    7
                } else {
                    i
                })
            })
            .collect();
        for name in COUNTER {
            for shards in SHARD_COUNTS {
                for partition in [Partition::Hash, Partition::RoundRobin] {
                    let cfg = shard_config(shards, partition, seed);
                    let merged = sharded_answer(name, &updates, &cfg);
                    let single = single_answer(name, &updates, &cfg);
                    let t = updates.len() as u64;
                    for (label, answer) in [("merged", &merged), ("single", &single)] {
                        let mut referee = hh_referee().build();
                        referee.observe_batch(&updates);
                        let verdict = referee.check(t, answer);
                        assert!(
                            verdict.is_correct(),
                            "{name} {label} answer violates the guarantee at \
                             {shards} shards ({partition:?}): {verdict:?}"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn every_registry_algorithm_has_a_definite_merge_story() {
    // The mergeable set is exactly LINEAR ∪ COUNTER; everything else in the
    // registry refuses with a typed error rather than merging unsoundly.
    let p = params();
    let mergeable: Vec<&str> = LINEAR.iter().chain(COUNTER).copied().collect();
    for name in registry::names() {
        let ctor = |_: usize| registry::get(name, &p);
        let probed = probe_mergeable(&ctor).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(
            probed,
            mergeable.contains(&name),
            "{name}: mergeability drifted from the documented set"
        );
    }
}

#[test]
fn sharded_ingest_is_thread_count_invariant() {
    let updates: Vec<Update> = (0..2000u64)
        .map(|t| Update::Insert(if t % 3 == 0 { 5 } else { t % 61 }))
        .collect();
    for name in LINEAR.iter().chain(COUNTER) {
        let answers: Vec<Answer> = [1usize, 2, 8]
            .into_iter()
            .map(|threads| {
                let mut cfg = shard_config(4, Partition::Hash, 11);
                cfg.threads = threads;
                sharded_answer(name, &updates, &cfg)
            })
            .collect();
        assert_eq!(answers[0], answers[1], "{name}: 1 vs 2 threads");
        assert_eq!(answers[0], answers[2], "{name}: 1 vs 8 threads");
    }
}
