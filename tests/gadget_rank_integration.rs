//! Theorem 1.10's gadget end-to-end: the DetGapEQ→rank encoding from
//! `wb-lowerbounds` streamed into the `wb-linalg` machinery.

use wbstream::core::rng::TranscriptRng;
use wbstream::linalg::{rank, EntryUpdate, RankDecisionSketch, ZqMatrix};
use wbstream::lowerbounds::comm::games::{balanced_strings, hamming};
use wbstream::lowerbounds::gadgets::{rank_gadget_rows, rank_of_gadget};

/// Stream the gadget matrix into the Theorem 1.6 sketch and decide
/// equality: rank ≥ n/2 + 1 iff x ≠ y.
fn decide_equality_via_rank_sketch(x: &[bool], y: &[bool], tag: &[u8]) -> bool {
    let n = x.len();
    let rows = rank_gadget_rows(x, y);
    let k = n / 2 + 1; // threshold separating equal from unequal
                       // The gadget matrix is 2n × n; the sketch is built for square input, so
                       // fold the two diagonal blocks into a 2n-dimension square matrix view.
    let dim = 2 * n;
    let mut sketch = RankDecisionSketch::new(dim, k, tag);
    for (i, row) in rows.iter().enumerate() {
        for (j, &v) in row.iter().enumerate() {
            if v != 0 {
                sketch.update(EntryUpdate {
                    row: i,
                    col: j,
                    delta: v,
                });
            }
        }
    }
    // rank < n/2 + 1 ⟺ x = y under the promise.
    !sketch.rank_at_least_k()
}

#[test]
fn gadget_rank_matches_support_union_exactly() {
    // Exact rank of the gadget matrix equals |supp(x) ∪ supp(y)|.
    for x in balanced_strings(6) {
        for y in balanced_strings(6) {
            let rows = rank_gadget_rows(&x, &y);
            let m = ZqMatrix::from_rows(1_000_003, &rows);
            assert_eq!(rank(&m) as u64, rank_of_gadget(&x, &y));
        }
    }
}

#[test]
fn rank_sketch_decides_det_gap_eq_on_all_promise_pairs() {
    // Every promise pair (gap 2) at n = 6 is decided correctly by the
    // streaming sketch — DetGapEQ solved through Theorem 1.6's algorithm,
    // which is exactly the pipeline Theorem 1.10 lower-bounds.
    let inputs = balanced_strings(6);
    let mut checked = 0;
    for (xi, x) in inputs.iter().enumerate() {
        for (yi, y) in inputs.iter().enumerate() {
            let d = hamming(x, y);
            if d != 0 && d < 2 {
                continue;
            }
            let tag = [xi as u8, yi as u8];
            let says_equal = decide_equality_via_rank_sketch(x, y, &tag);
            assert_eq!(says_equal, x == y, "pair ({xi}, {yi})");
            checked += 1;
        }
    }
    assert!(checked >= 400, "checked {checked} promise pairs");
}

#[test]
fn fp_gadget_and_rank_gadget_agree_on_distinguishing_power() {
    // F0 of the union and the gadget rank are the same statistic.
    use wbstream::lowerbounds::gadgets::fp_of_union_exact;
    for x in balanced_strings(8).iter().take(20) {
        for y in balanced_strings(8).iter().take(20) {
            assert_eq!(fp_of_union_exact(x, y, 0), rank_of_gadget(x, y));
        }
    }
}

#[test]
fn sketch_space_is_linear_while_decision_is_global() {
    // The sketch deciding the gadget uses O(k · 2n) residues — linear in n
    // for constant gap fractions — consistent with (not contradicting) the
    // Ω(n) bound of Theorem 1.10.
    use wbstream::core::space::SpaceUsage;
    let mut rng = TranscriptRng::from_seed(4000);
    let n = 16;
    let x: Vec<bool> = (0..n).map(|_| rng.bernoulli(0.5)).collect();
    let rows = rank_gadget_rows(&x, &x);
    let mut sketch = RankDecisionSketch::new(2 * n, n / 2 + 1, b"space");
    for (i, row) in rows.iter().enumerate() {
        for (j, &v) in row.iter().enumerate() {
            if v != 0 {
                sketch.update(EntryUpdate {
                    row: i,
                    col: j,
                    delta: v,
                });
            }
        }
    }
    assert!(sketch.space_bits() as usize >= n, "must be at least linear");
}
