//! Property-based tests for the sketching layer: the deterministic
//! invariants hold on *arbitrary* streams, not just the unit-test ones.

use proptest::prelude::*;
use std::collections::HashMap;
use wbstream::core::rng::TranscriptRng;
use wbstream::core::space::SpaceUsage;
use wbstream::sketch::l0::{MatrixMode, SisL0Estimator};
use wbstream::sketch::{MisraGries, MorrisCounter, SpaceSaving};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn misra_gries_sandwich_on_arbitrary_streams(
        stream in proptest::collection::vec(0u64..32, 1..600),
        k in 2usize..12,
    ) {
        let mut mg = MisraGries::with_counters(k, 32);
        let mut truth: HashMap<u64, u64> = HashMap::new();
        for &item in &stream {
            mg.insert(item);
            *truth.entry(item).or_insert(0) += 1;
        }
        let m = stream.len() as u64;
        for item in 0..32u64 {
            let f = truth.get(&item).copied().unwrap_or(0);
            let est = mg.estimate(item);
            prop_assert!(est <= f, "item {item}: est {est} > f {f}");
            prop_assert!(f - est <= m / k as u64, "item {item}: error too large");
        }
        prop_assert!(mg.entries().len() <= k);
    }

    #[test]
    fn space_saving_sandwich_on_arbitrary_streams(
        stream in proptest::collection::vec(0u64..32, 1..600),
        k in 2usize..12,
    ) {
        let mut ss = SpaceSaving::with_counters(k, 32);
        let mut truth: HashMap<u64, u64> = HashMap::new();
        for &item in &stream {
            ss.insert(item);
            *truth.entry(item).or_insert(0) += 1;
        }
        let m = stream.len() as u64;
        for (item, e) in ss.entries() {
            let f = truth.get(&item).copied().unwrap_or(0);
            prop_assert!(e.count >= f);
            prop_assert!(e.count - e.err <= f);
            prop_assert!(e.err <= m / k as u64 + 1);
        }
    }

    #[test]
    fn morris_estimate_is_monotone_in_exponent(seed in 0u64..500, n in 1u64..5000) {
        let mut rng = TranscriptRng::from_seed(seed);
        let mut c = MorrisCounter::with_base(0.5);
        let mut last_exp = 0;
        for _ in 0..n {
            c.increment(&mut rng);
            prop_assert!(c.exponent() >= last_exp, "exponent never decreases");
            last_exp = c.exponent();
        }
        // The estimate is a strictly increasing function of the exponent.
        prop_assert!(c.estimate() >= 0.0);
        prop_assert!(c.space_bits() <= 64);
    }

    #[test]
    fn sis_l0_sandwich_on_arbitrary_turnstile_streams(
        ops in proptest::collection::vec((0u64..256, -3i64..=3), 1..200),
    ) {
        let mut rng = TranscriptRng::from_seed(9);
        let mut est = SisL0Estimator::new(256, 0.5, 0.25, MatrixMode::RandomOracle, &mut rng);
        let mut freqs: HashMap<u64, i64> = HashMap::new();
        for &(item, delta) in &ops {
            est.update(item, delta);
            let e = freqs.entry(item).or_insert(0);
            *e += delta;
            if *e == 0 {
                freqs.remove(&item);
            }
        }
        let l0 = freqs.len() as u64;
        let (lo, hi) = est.answer_range();
        prop_assert!(lo <= l0, "answer {lo} exceeds true L0 {l0}");
        prop_assert!(l0 <= hi, "true L0 {l0} exceeds upper bound {hi}");
    }

    #[test]
    fn sis_l0_full_cancellation_always_reads_zero(
        items in proptest::collection::vec(0u64..256, 1..60),
        delta in 1i64..4,
    ) {
        let mut rng = TranscriptRng::from_seed(10);
        let mut est = SisL0Estimator::new(256, 0.5, 0.25, MatrixMode::Explicit, &mut rng);
        for &item in &items {
            est.update(item, delta);
        }
        for &item in &items {
            est.update(item, -delta);
        }
        prop_assert_eq!(est.answer(), 0);
    }
}
