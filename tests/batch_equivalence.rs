//! Batch/sequential equivalence: for **every** registry-listed algorithm,
//! `process_batch` must leave bit-identical observable state (query answer
//! and space accounting) and an identical randomness transcript compared
//! to per-update `process`, for arbitrary update sequences and chunkings.
//! This is the contract that lets the engine route oblivious stream
//! segments through the hand-optimized batch overrides.

use proptest::prelude::*;
use wbstream::core::rng::TranscriptRng;
use wbstream::engine::registry::{self, Params};
use wbstream::engine::Update;

/// Insertion-only update stream over a small universe (all algorithms can
/// ingest these; turnstile-capable ones see them as unit insertions).
fn insert_updates(items: &[u64]) -> Vec<Update> {
    items.iter().map(|&i| Update::Insert(i)).collect()
}

/// Signed update stream for the turnstile-capable algorithms.
fn turnstile_updates(raw: &[(u64, i64)]) -> Vec<Update> {
    raw.iter()
        .map(|&(item, delta)| Update::Turnstile {
            item,
            delta: if delta == 0 { 1 } else { delta },
        })
        .collect()
}

/// Feed `updates` to a fresh `name` instance sequentially and chunked;
/// assert identical answers, space, and transcripts.
fn assert_equivalent(name: &str, updates: &[Update], chunk: usize, seed: u64) {
    let params = Params::default().with_n(64).with_m_guess(1 << 10);
    let mut seq = registry::get(name, &params).unwrap();
    let mut bat = registry::get(name, &params).unwrap();
    let mut rng_seq = TranscriptRng::from_seed(seed);
    let mut rng_bat = TranscriptRng::from_seed(seed);
    for u in updates {
        seq.process_dyn(u, &mut rng_seq)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
    }
    for c in updates.chunks(chunk.max(1)) {
        bat.process_batch_dyn(c, &mut rng_bat)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
    }
    assert_eq!(
        seq.query_dyn(),
        bat.query_dyn(),
        "{name}: answers diverge at chunk {chunk}"
    );
    assert_eq!(
        seq.space_bits_dyn(),
        bat.space_bits_dyn(),
        "{name}: space accounting diverges at chunk {chunk}"
    );
    assert_eq!(
        rng_seq.transcript().draws(),
        rng_bat.transcript().draws(),
        "{name}: randomness transcripts diverge at chunk {chunk}"
    );
    assert_eq!(
        rng_seq.transcript().recent(),
        rng_bat.transcript().recent(),
        "{name}: transcript tapes diverge at chunk {chunk}"
    );
}

/// Registry algorithms that accept insertion-only streams (all of them:
/// turnstile algorithms see unit insertions).
fn insert_capable() -> Vec<&'static str> {
    registry::names()
}

/// Registry algorithms whose stream model is turnstile. `ams_f2` and
/// `exact_l0` have hand-optimized batch overrides that aggregate per-item
/// deltas before touching the counters; these cases are what pins their
/// bit-identical-state contract.
const TURNSTILE: &[&str] = &["ams_f2", "exact_l0", "sis_l0"];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn batch_equals_sequential_on_insertions(
        items in proptest::collection::vec(0u64..64, 1..400),
        chunk in 1usize..96,
        seed in 0u64..1000,
    ) {
        let updates = insert_updates(&items);
        for name in insert_capable() {
            assert_equivalent(name, &updates, chunk, seed);
        }
    }

    #[test]
    fn batch_equals_sequential_on_turnstile(
        raw in proptest::collection::vec((0u64..64, -3i64..=3), 1..300),
        chunk in 1usize..64,
        seed in 0u64..1000,
    ) {
        let updates = turnstile_updates(&raw);
        for name in TURNSTILE {
            assert_equivalent(name, &updates, chunk, seed);
        }
    }

    #[test]
    fn batch_equals_sequential_on_weighted_inserts(
        raw in proptest::collection::vec((0u64..64, 1i64..=9), 1..200),
        chunk in 1usize..48,
        seed in 0u64..1000,
    ) {
        // Positive multi-unit turnstile deltas reaching insert-only
        // sketches through the erased layer's delta expansion: the batched
        // path (expansion + sort/run-length aggregation in e.g. CountMin)
        // must stay bit-identical to per-update processing — for **every**
        // insert-only algorithm, including the randomized ones whose
        // expanded unit inserts each consume coins.
        let updates: Vec<Update> = raw
            .iter()
            .map(|&(item, delta)| Update::Turnstile { item, delta })
            .collect();
        for name in insert_only() {
            assert_equivalent(name, &updates, chunk, seed);
        }
    }
}

/// The insert-only registry algorithms (turnstile updates reach them via
/// the erased layer's positive-delta expansion).
fn insert_only() -> Vec<&'static str> {
    registry::names()
        .into_iter()
        .filter(|n| !TURNSTILE.contains(n))
        .collect()
}

/// The chunk sizes the ISSUE pins for every newly-kerneled algorithm: a
/// singleton (batch path must degrade to the scalar path exactly), a
/// non-round prime (every block-prefetch kernel ends with a ragged tail),
/// and a batch larger than every internal block size (4096 > 512-word
/// prefetch blocks, forcing multiple refills per call).
const PINNED_CHUNKS: &[usize] = &[1, 7, 4096];

#[test]
fn pinned_chunk_sizes_cover_all_registry_algorithms() {
    // Runs-heavy head (exercises run-collapsing kernels) followed by a
    // high-distinct tail (exercises the no-run fallbacks), 9216 updates so
    // chunk 4096 yields full, ragged, and final partial batches.
    let items: Vec<u64> = (0..9216u64)
        .map(|t| {
            if t % 3 != 2 {
                (t / 7) % 8
            } else {
                t.wrapping_mul(2654435761) % 64
            }
        })
        .collect();
    let updates = insert_updates(&items);
    for &chunk in PINNED_CHUNKS {
        for name in registry::names() {
            assert_equivalent(name, &updates, chunk, 12);
        }
    }
}

#[test]
fn pinned_chunk_sizes_cover_turnstile_and_expansion() {
    // Signed stream: turnstile algorithms fold cancellations; insert-only
    // algorithms see the positive deltas expanded to unit inserts by the
    // erased layer. Both must hold at every pinned chunk size.
    let signed: Vec<Update> = (0..4500u64)
        .map(|t| Update::Turnstile {
            item: t % 48,
            delta: [1, -1, 3, 2, -2, 1, 5][(t % 7) as usize],
        })
        .collect();
    let positive: Vec<Update> = (0..1500u64)
        .map(|t| Update::Turnstile {
            item: t % 32,
            delta: 1 + (t % 9) as i64,
        })
        .collect();
    for &chunk in PINNED_CHUNKS {
        for name in TURNSTILE {
            assert_equivalent(name, &signed, chunk, 23);
        }
        for name in insert_only() {
            assert_equivalent(name, &positive, chunk, 23);
        }
    }
}

/// Large single batches (≥ 4096 updates, one `process_batch_dyn` call) pin
/// the distinct-item aggregation kernels: CountMin's adaptive path samples
/// the batch prefix and either run-aggregates or hashes per update, and
/// AmsF2 folds per-item deltas before touching any counter. Both regimes —
/// low-distinct (aggregation wins, taken) and high-distinct (direct
/// hashing, taken) — must be bit-identical to per-update processing.
#[test]
fn large_batch_low_distinct_matches_sequential() {
    // 8192 updates over 16 items: the sampled prefix is runs-dominated, so
    // CountMin's aggregation path fires and AMS folds 16 signed sums.
    let items: Vec<u64> = (0..8192u64).map(|t| (t * t + 3 * t) % 16).collect();
    let updates = insert_updates(&items);
    for name in ["count_min", "misra_gries", "ams_f2"] {
        assert_equivalent(name, &updates, usize::MAX, 5);
    }
}

#[test]
fn large_batch_high_distinct_matches_sequential() {
    // 4096 updates, nearly all distinct (multiplication by an odd constant
    // permutes the 12-bit universe): CountMin's sample sees ~no runs and
    // falls back to direct per-update hashing.
    let items: Vec<u64> = (0..4096u64)
        .map(|t| (t.wrapping_mul(2654435761)) % 4096)
        .collect();
    let updates = insert_updates(&items);
    for name in ["count_min", "misra_gries", "ams_f2"] {
        assert_equivalent(name, &updates, usize::MAX, 5);
    }
}

#[test]
fn large_batch_turnstile_matches_sequential() {
    // 6144 signed updates over 48 items, deltas in [-3, 3] \ {0}: the
    // turnstile aggregators must fold cancellations exactly.
    let raw: Vec<(u64, i64)> = (0..6144u64)
        .map(|t| (t % 48, ((t / 48) % 7) as i64 - 3))
        .collect();
    let updates = turnstile_updates(&raw);
    for name in TURNSTILE {
        assert_equivalent(name, &updates, usize::MAX, 5);
    }
}

#[test]
fn registry_names_cover_both_models() {
    let names = registry::names();
    assert!(names.len() >= 8);
    for t in TURNSTILE {
        assert!(names.contains(t), "{t} missing from registry");
    }
}
