//! Property-based tests for the cryptographic substrate.

use proptest::prelude::*;
use wbstream::core::rng::TranscriptRng;
use wbstream::crypto::modular::{add_mod, balanced, inv_mod, mul_mod, pow_mod, sub_mod};
use wbstream::crypto::prime::{factorize, is_prime};
use wbstream::crypto::sha256::{sha256, Sha256};
use wbstream::crypto::sis::{SisMatrix, SisParams};

const P61: u64 = (1 << 61) - 1;

proptest! {
    #[test]
    fn add_mod_is_commutative_and_associative(a in 0..P61, b in 0..P61, c in 0..P61) {
        prop_assert_eq!(add_mod(a, b, P61), add_mod(b, a, P61));
        prop_assert_eq!(
            add_mod(add_mod(a, b, P61), c, P61),
            add_mod(a, add_mod(b, c, P61), P61)
        );
    }

    #[test]
    fn sub_mod_inverts_add_mod(a in 0..P61, b in 0..P61) {
        prop_assert_eq!(sub_mod(add_mod(a, b, P61), b, P61), a);
    }

    #[test]
    fn mul_mod_distributes_over_add(a in 0..P61, b in 0..P61, c in 0..P61) {
        let lhs = mul_mod(a, add_mod(b, c, P61), P61);
        let rhs = add_mod(mul_mod(a, b, P61), mul_mod(a, c, P61), P61);
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn pow_mod_addition_law(a in 1..P61, e1 in 0u64..1000, e2 in 0u64..1000) {
        // a^(e1+e2) = a^e1 · a^e2
        prop_assert_eq!(
            pow_mod(a, e1 + e2, P61),
            mul_mod(pow_mod(a, e1, P61), pow_mod(a, e2, P61), P61)
        );
    }

    #[test]
    fn inverse_roundtrip(a in 1..P61) {
        let inv = inv_mod(a, P61).expect("prime modulus");
        prop_assert_eq!(mul_mod(a, inv, P61), 1);
        prop_assert_eq!(inv_mod(inv, P61), Some(a));
    }

    #[test]
    fn balanced_lift_roundtrip(x in 0..P61) {
        let b = balanced(x, P61);
        prop_assert!(b.unsigned_abs() <= P61 / 2 + 1);
        let back = b.rem_euclid(P61 as i64) as u64;
        prop_assert_eq!(back, x);
    }

    #[test]
    fn factorization_reassembles_and_is_prime(n in 2u64..1_000_000_000) {
        let fs = factorize(n);
        let product: u64 = fs.iter().map(|&(p, e)| p.pow(e)).product();
        prop_assert_eq!(product, n);
        for (p, _) in fs {
            prop_assert!(is_prime(p), "{p} not prime");
        }
    }

    #[test]
    fn sha256_incremental_equals_oneshot(data in proptest::collection::vec(any::<u8>(), 0..500),
                                         split in 0usize..500) {
        let split = split.min(data.len());
        let mut h = Sha256::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        prop_assert_eq!(h.finalize(), sha256(&data));
    }

    #[test]
    fn sha256_distinguishes_any_flip(data in proptest::collection::vec(any::<u8>(), 1..100),
                                     idx in 0usize..100, bit in 0u8..8) {
        let idx = idx % data.len();
        let mut tweaked = data.clone();
        tweaked[idx] ^= 1 << bit;
        prop_assert_ne!(sha256(&data), sha256(&tweaked));
    }

    #[test]
    fn sis_apply_is_linear(seed in 0u64..1000,
                           x in proptest::collection::vec(-3i64..=3, 6),
                           y in proptest::collection::vec(-3i64..=3, 6)) {
        let params = SisParams { d: 3, w: 6, q: 1_000_003, beta_inf: 10 };
        let mut rng = TranscriptRng::from_seed(seed);
        let m = SisMatrix::random_explicit(params, &mut rng);
        let ax = m.apply(&x);
        let ay = m.apply(&y);
        let sum: Vec<i64> = x.iter().zip(&y).map(|(a, b)| a + b).collect();
        let asum = m.apply(&sum);
        for i in 0..3 {
            prop_assert_eq!(asum[i], add_mod(ax[i], ay[i], params.q));
        }
    }

    #[test]
    fn oracle_and_explicit_columns_stay_in_range(j in 0usize..16) {
        let params = SisParams { d: 4, w: 16, q: 97, beta_inf: 2 };
        let m = SisMatrix::from_oracle(params, b"prop");
        for v in m.column(j) {
            prop_assert!(v < 97);
        }
    }
}
