//! Bulk RNG / scalar equivalence: the amortized batch APIs added for the
//! vectorized pipeline (`Xoshiro256StarStar::fill_u64`,
//! `TranscriptRng::next_u64_many`, `TranscriptRng::below_many`, and the
//! libdivide-style [`Reciprocal`] behind `below`) must be **draw-for-draw
//! identical** to the historical scalar loops: same raw words, same items,
//! and the same public transcript (`draws`, `recent`, `last`). This is the
//! white-box model's non-negotiable: every optimization must leave the
//! public random tape byte-identical.

use proptest::prelude::*;
use wbstream::core::rng::{Reciprocal, TranscriptRng, Xoshiro256StarStar};

/// Batch sizes the ISSUE pins: a singleton, a non-round prime, and a batch
/// larger than the transcript ring (4096 > 1024) so `record_many` has to
/// wrap and drop non-surviving words.
const BATCH_SIZES: &[usize] = &[1, 7, 4096];

/// Moduli worth pinning: non-powers-of-two (the reciprocal path), a power
/// of two (the mask path), `1` (degenerate), and a value above `2^63`
/// where rejection sampling actually rejects ~half the raw words, forcing
/// `below_many` through its redraw rounds.
const MODULI: &[u64] = &[1, 3, 5, 100, 1_000_003, 1 << 16, (1 << 63) + 3];

/// Asserts the two generators have identical public transcripts.
fn assert_transcripts_eq(a: &TranscriptRng, b: &TranscriptRng, ctx: &str) {
    assert_eq!(
        a.transcript().draws(),
        b.transcript().draws(),
        "{ctx}: draws"
    );
    assert_eq!(a.transcript().last(), b.transcript().last(), "{ctx}: last");
    assert_eq!(
        a.transcript().recent(),
        b.transcript().recent(),
        "{ctx}: recent ring"
    );
}

#[test]
fn fill_u64_matches_scalar_next_u64() {
    for &len in BATCH_SIZES {
        let mut bulk = Xoshiro256StarStar::from_seed(0xFEED);
        let mut scalar = Xoshiro256StarStar::from_seed(0xFEED);
        let mut words = vec![0u64; len];
        bulk.fill_u64(&mut words);
        for (i, &w) in words.iter().enumerate() {
            assert_eq!(w, scalar.next_u64(), "word {i} of {len}");
        }
        // The generators stay in lockstep after the batch.
        assert_eq!(bulk.next_u64(), scalar.next_u64(), "post-batch word");
    }
}

#[test]
fn next_u64_many_matches_scalar_loop() {
    for &len in BATCH_SIZES {
        let mut bulk = TranscriptRng::from_seed(42);
        let mut scalar = TranscriptRng::from_seed(42);
        let mut words = vec![0u64; len];
        bulk.next_u64_many(&mut words);
        for (i, &w) in words.iter().enumerate() {
            assert_eq!(w, scalar.next_u64(), "word {i} of batch {len}");
        }
        assert_transcripts_eq(&bulk, &scalar, &format!("batch {len}"));
    }
}

#[test]
fn below_many_matches_scalar_loop() {
    for &n in MODULI {
        for &len in BATCH_SIZES {
            let mut bulk = TranscriptRng::from_seed(7);
            let mut scalar = TranscriptRng::from_seed(7);
            let mut items = vec![0u64; len];
            bulk.below_many(n, &mut items);
            for (i, &it) in items.iter().enumerate() {
                assert_eq!(it, scalar.below(n), "item {i} of batch {len}, n={n}");
            }
            assert_transcripts_eq(&bulk, &scalar, &format!("n={n} batch {len}"));
        }
    }
}

#[test]
fn reciprocal_edge_cases() {
    for &n in &[1u64, 2, 3, (1 << 61) - 1, u64::MAX - 1, u64::MAX] {
        let r = Reciprocal::new(n);
        for &v in &[
            0u64,
            1,
            n - 1,
            n,
            n.wrapping_add(1),
            u64::MAX / 2,
            u64::MAX - 1,
            u64::MAX,
        ] {
            assert_eq!(r.rem(v), v % n, "rem({v}) mod {n}");
        }
        // The acceptance zone is the largest multiple of n in u64 range.
        assert_eq!(r.zone() % n, 0, "zone is a multiple of n={n}");
        assert!(
            u64::MAX - r.zone() < n,
            "zone is the largest multiple, n={n}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `Reciprocal::rem` is exactly `%` for every divisor and dividend.
    #[test]
    fn reciprocal_rem_is_exact(n in 1u64..=u64::MAX, v in any::<u64>()) {
        prop_assert_eq!(Reciprocal::new(n).rem(v), v % n);
    }

    /// Bulk word fills agree with the scalar tape from any interior offset
    /// (a scalar prefix desynchronizes any fill that assumed alignment).
    #[test]
    fn fill_u64_matches_from_any_offset(
        seed in any::<u64>(),
        prefix in 0usize..9,
        len in 0usize..600,
    ) {
        let mut bulk = Xoshiro256StarStar::from_seed(seed);
        let mut scalar = Xoshiro256StarStar::from_seed(seed);
        for _ in 0..prefix {
            prop_assert_eq!(bulk.next_u64(), scalar.next_u64());
        }
        let mut words = vec![0u64; len];
        bulk.fill_u64(&mut words);
        for &w in &words {
            prop_assert_eq!(w, scalar.next_u64());
        }
        prop_assert_eq!(bulk.next_u64(), scalar.next_u64());
    }

    /// Interleaved bulk and scalar word draws keep the transcript (and the
    /// tape) in lockstep — `record_many` ends in exactly the ring state the
    /// per-word path produces, including wraps past the 1024-word ring.
    #[test]
    fn interleaved_next_u64_many_keeps_transcript(
        seed in any::<u64>(),
        batches in proptest::collection::vec(0usize..700, 1..6),
    ) {
        let mut bulk = TranscriptRng::from_seed(seed);
        let mut scalar = TranscriptRng::from_seed(seed);
        for (round, &len) in batches.iter().enumerate() {
            let mut words = vec![0u64; len];
            bulk.next_u64_many(&mut words);
            for &w in &words {
                prop_assert_eq!(w, scalar.next_u64());
            }
            // A scalar draw on both keeps them aligned between batches.
            prop_assert_eq!(bulk.next_u64(), scalar.next_u64());
            assert_transcripts_eq(&bulk, &scalar, &format!("round {round}"));
        }
    }

    /// `below_many` equals the scalar rejection loop for arbitrary
    /// (non-power-of-two included) moduli: same items, same number of raw
    /// words burned, same transcript.
    #[test]
    fn below_many_matches_scalar_for_arbitrary_n(
        seed in any::<u64>(),
        n in 1u64..=u64::MAX,
        len in 0usize..300,
    ) {
        let mut bulk = TranscriptRng::from_seed(seed);
        let mut scalar = TranscriptRng::from_seed(seed);
        let mut items = vec![0u64; len];
        bulk.below_many(n, &mut items);
        for &it in &items {
            prop_assert_eq!(it, scalar.below(n));
        }
        assert_transcripts_eq(&bulk, &scalar, &format!("n={n} len={len}"));
    }
}
