//! The model separation, run head-to-head: the same algorithms under a
//! black-box adversary (outputs only) and a white-box adversary (full
//! state). The paper's §1 motivation made executable.

use wbstream::core::game::{BlackBoxAdversary, FnAdversary, FnReferee, Verdict};
use wbstream::core::rng::{RandTranscript, TranscriptRng};
use wbstream::core::stream::Turnstile;
use wbstream::engine::Game;
use wbstream::sketch::ams::{find_aligned_items, AmsF2};
use wbstream::sketch::count_min::{forge_all_row_collisions, CountMin};

/// Referee for the CountMin attack experiments: the victim item 0 is never
/// inserted, so its estimate must stay within the oblivious error bound.
fn count_min_referee(width: usize) -> impl FnMut(u64, &u64) -> Verdict {
    move |t: u64, est: &u64| {
        let bound = 2.0 * t as f64 / width as f64 + 1.0;
        if (*est as f64) <= bound {
            Verdict::Correct
        } else {
            Verdict::violation(format!(
                "round {t}: victim estimate {est} > bound {bound:.1}"
            ))
        }
    }
}

#[test]
fn count_min_survives_black_box_but_falls_white_box() {
    let width = 64;
    let rounds = 2000;

    // Black-box: the adversary sees only the victim's running estimate.
    // Blind guessing hits an all-row collision with probability 1/width²
    // per item — at width 64 and 2000 rounds the victim stays near zero.
    let mut rng = TranscriptRng::from_seed(7001);
    let cm = CountMin::new(2, width, &mut rng);
    let adv = BlackBoxAdversary::new(|t: u64, _last: Option<&u64>| {
        (t <= rounds).then(|| wbstream::core::stream::InsertOnly(1 + t % 1000))
    });
    let report = Game::new(cm)
        .adversary(adv)
        .referee(FnReferee::new(count_min_referee(width)))
        .max_rounds(rounds)
        .seed(7002)
        .run();
    let result = report.result;
    assert!(
        result.survived(),
        "black-box random traffic must not inflate the victim: {:?}",
        result.failure
    );

    // White-box: the adversary reads the hash seeds and sends only items
    // colliding with the victim in every row.
    let mut rng = TranscriptRng::from_seed(7003);
    let cm = CountMin::new(2, width, &mut rng);
    let mut forged: Vec<u64> = Vec::new();
    let adv = FnAdversary::new(
        move |t: u64, alg: &CountMin, _tr: &RandTranscript, _last: Option<&u64>| {
            if forged.is_empty() {
                forged = forge_all_row_collisions(alg, 0, 512, 3_000_000);
                assert!(!forged.is_empty(), "white-box forging must find colliders");
            }
            (t <= rounds).then(|| {
                wbstream::core::stream::InsertOnly(forged[(t as usize - 1) % forged.len()])
            })
        },
    );
    let report = Game::new(cm)
        .adversary(adv)
        .referee(FnReferee::new(count_min_referee(width)))
        .max_rounds(rounds)
        .seed(7004)
        .run();
    let result = report.result;
    assert!(!result.survived(), "white-box forging must defeat CountMin");
    // The break happens quickly: every forged insert lands on the victim.
    assert!(result.failure.unwrap().round < 400);
}

#[test]
fn ams_survives_black_box_but_falls_white_box() {
    let copies = 15;
    let m = 3000u64;
    // Referee: estimate within 32x of the true F2 (every inserted item is
    // distinct, so F2 = t), after a grace period — the median-of-15
    // estimator's per-prefix variance needs the slack, and the white-box
    // attack overshoots it by orders of magnitude anyway.
    let referee_fn = |t: u64, est: &f64| {
        let f2 = t as f64;
        if t < 256 || (*est <= 32.0 * f2 && *est >= f2 / 32.0) {
            Verdict::Correct
        } else {
            Verdict::violation(format!("round {t}: estimate {est} vs F2 {f2}"))
        }
    };

    // Black-box: distinct random-ish items; the median estimator holds.
    let mut rng = TranscriptRng::from_seed(7010);
    let ams = AmsF2::new(copies, &mut rng);
    let adv = BlackBoxAdversary::new(|t: u64, _last: Option<&f64>| {
        (t <= m).then(|| Turnstile::insert(t.wrapping_mul(2654435761)))
    });
    let report = Game::new(ams)
        .adversary(adv)
        .referee(FnReferee::new(referee_fn))
        .max_rounds(m)
        .seed(7011)
        .run();
    let result = report.result;
    assert!(result.survived(), "black-box: {:?}", result.failure);

    // White-box: sign-aligned items drive every copy in lockstep.
    let mut rng = TranscriptRng::from_seed(7012);
    let ams = AmsF2::new(copies, &mut rng);
    let mut aligned: Vec<u64> = Vec::new();
    let adv = FnAdversary::new(
        move |t: u64, alg: &AmsF2, _tr: &RandTranscript, _last: Option<&f64>| {
            if aligned.is_empty() {
                // 2^-15 of ids align; a 2^20 scan yields ~32 of them, and
                // cycling a handful is enough to drive every counter to t.
                aligned = find_aligned_items(alg, 64, 1 << 20);
                assert!(aligned.len() >= 8, "alignment scan must succeed");
            }
            (t <= m).then(|| Turnstile::insert(aligned[(t as usize - 1) % aligned.len()]))
        },
    );
    let report = Game::new(ams)
        .adversary(adv)
        .referee(FnReferee::new(referee_fn))
        .max_rounds(m)
        .seed(7013)
        .run();
    let result = report.result;
    assert!(!result.survived(), "white-box alignment must defeat AMS");
}
