//! Satellite of the tournament tentpole: the JSON report of a tournament
//! run must be **byte-identical** across thread counts for the same master
//! seed. Every cell's random tapes derive from
//! `(master_seed, alg, adversary, workload, role)` and the pool reassembles
//! results in submission order, so scheduling freedom must be invisible.

use wb_engine::tournament::{run_tournament, CellVerdict, TournamentConfig};

/// Full registry cross-product at smoke scale, pinned master seed.
fn config(threads: usize) -> TournamentConfig {
    let mut cfg = TournamentConfig::default().quick();
    cfg.master_seed = 0xDEC0DE;
    cfg.threads = threads;
    // Smaller than --quick: three full cross-products run in this test.
    cfg.prelude_m = 192;
    cfg.rounds = 96;
    cfg.batch = 64;
    cfg
}

#[test]
fn tournament_reports_are_byte_identical_across_thread_counts() {
    let report_1 = run_tournament(&config(1));
    let report_4 = run_tournament(&config(4));
    let report_8 = run_tournament(&config(8));

    // The full cross-product ran each time.
    let expected_cells = config(1).cell_count();
    assert!(expected_cells >= 12 * 5 * 5, "registry shrank?");
    assert_eq!(report_1.cells.len(), expected_cells);
    assert_eq!(report_4.cells.len(), expected_cells);
    assert_eq!(report_8.cells.len(), expected_cells);
    assert_eq!(report_4.threads, 4);
    assert_eq!(report_8.threads, 8);

    // Byte-identical sorted JSON reports, regardless of worker count.
    let json_1 = report_1.json_lines().join("\n");
    let json_4 = report_4.json_lines().join("\n");
    let json_8 = report_8.json_lines().join("\n");
    assert!(!json_1.is_empty());
    assert_eq!(json_1, json_4, "1 vs 4 threads diverged");
    assert_eq!(json_1, json_8, "1 vs 8 threads diverged");
}

#[test]
fn sharded_tournament_reports_are_byte_identical_across_thread_counts() {
    // Acceptance criterion of the sharded-ingestion tentpole: with the
    // prelude split across 4 shard instances, the JSON report stays a pure
    // function of the configuration for --threads 1 / 4 / 8.
    let sharded = |threads: usize| {
        let mut cfg = config(threads);
        cfg.shards = 4;
        cfg
    };
    let json_1 = run_tournament(&sharded(1)).json_lines().join("\n");
    let json_4 = run_tournament(&sharded(4)).json_lines().join("\n");
    let json_8 = run_tournament(&sharded(8)).json_lines().join("\n");
    assert!(!json_1.is_empty());
    assert_eq!(json_1, json_4, "sharded: 1 vs 4 threads diverged");
    assert_eq!(json_1, json_8, "sharded: 1 vs 8 threads diverged");
    assert!(json_1.contains(r#""shards":4"#));
    // No cell may error out under sharding: unmergeable algorithms fall
    // back to flat single-stream ingestion instead of failing.
    for report in [run_tournament(&sharded(2))] {
        for cell in &report.cells {
            assert_ne!(
                cell.verdict,
                CellVerdict::Error,
                "{} vs {} on {} errored under sharding: {}",
                cell.alg,
                cell.adversary,
                cell.workload,
                cell.detail
            );
        }
    }
}

#[test]
fn tournament_is_reproducible_for_the_same_master_seed_only() {
    let mut other_seed = config(2);
    other_seed.master_seed = 0xBEEF;
    let a = run_tournament(&config(2)).json_lines().join("\n");
    let b = run_tournament(&other_seed).json_lines().join("\n");
    // Seeds differ in every line (they embed the derived per-cell seed).
    assert_ne!(a, b, "master seed must perturb the report");
}

#[test]
fn tournament_cells_carry_real_outcomes() {
    let report = run_tournament(&config(3));
    // Every cell either played rounds or explains why it could not.
    for cell in &report.cells {
        match cell.verdict {
            CellVerdict::Survived => {
                assert!(cell.rounds > 0, "{} survived 0 rounds", cell.alg);
                assert!(cell.detail.is_empty());
            }
            CellVerdict::Violated { round } => {
                assert!(round >= 1 && round <= cell.rounds + 1);
                assert!(!cell.detail.is_empty());
            }
            CellVerdict::Incompatible => assert!(!cell.detail.is_empty()),
            CellVerdict::Error => panic!(
                "cell {} vs {} on {} errored: {}",
                cell.alg, cell.adversary, cell.workload, cell.detail
            ),
        }
        assert!(cell.peak_space_bits >= cell.final_space_bits || cell.rounds == 0);
    }
    // The turnstile algorithms play every workload; insertion-only ones
    // record churn as incompatible rather than erroring.
    let incompatible = report
        .cells
        .iter()
        .filter(|c| c.verdict == CellVerdict::Incompatible)
        .count();
    assert!(incompatible > 0, "churn x insertion-only must be recorded");
    assert!(report
        .cells
        .iter()
        .filter(|c| c.alg == "exact_l0")
        .all(|c| c.verdict == CellVerdict::Survived));
}
