//! The streaming-pipeline contract: pull-based chunked generation is
//! **byte-identical** to the materialized path, end to end.
//!
//! * `WorkloadSpec::stream()` chunk-concatenation equals `generate()` for
//!   every workload variant and for chunk sizes {1, 7, 4096};
//! * sharded ingestion through the bounded chunk queues matches the
//!   classic materialized-bucket dataflow (`partition_updates` +
//!   per-bucket batched ingest + reduction-tree merge) bit for bit, for
//!   both partition rules and for inline and threaded modes;
//! * the tournament's report is invariant under the transport chunk size.

use proptest::prelude::*;
use wbstream::core::rng::TranscriptRng;
use wbstream::engine::registry::{self, Params};
use wbstream::engine::shard::{
    ingest_sharded_source, merge_reduce, partition_updates, Partition, ShardConfig,
};
use wbstream::engine::workload::UpdateSource;
use wbstream::engine::{DynStreamAlg, Update, WorkloadSpec};

/// Every generator variant at proptest-friendly sizes, plus a literal
/// script. `m` perturbs the stream length, `seed` the tape.
fn variants(m: u64, seed: u64) -> Vec<WorkloadSpec> {
    vec![
        WorkloadSpec::Zipf {
            n: 1 << 10,
            m,
            heavy: 8,
            seed,
        },
        WorkloadSpec::Ddos { m, seed },
        WorkloadSpec::Churn {
            n: 1 << 10,
            waves: (m / 96).max(1),
            wave: 64,
            seed,
        },
        WorkloadSpec::Uniform {
            n: 1 << 10,
            m,
            seed,
        },
        WorkloadSpec::Cycle { items: 8, m },
        WorkloadSpec::Script((0..m).map(|t| Update::Insert(t % 37)).collect()),
    ]
}

/// Concatenate `spec.stream()` pulled with a buffer of capacity `chunk`.
fn concat_chunks(spec: &WorkloadSpec, chunk: usize) -> Vec<Update> {
    let mut source = spec.stream();
    let mut out = Vec::new();
    let mut buf = Vec::with_capacity(chunk);
    while source.next_chunk(&mut buf) > 0 {
        assert!(
            buf.len() <= chunk,
            "chunk overflow: {} > {chunk}",
            buf.len()
        );
        out.extend_from_slice(&buf);
    }
    out
}

/// The historical materialized-bucket sharded dataflow, kept here as the
/// reference the streaming chunk queues are checked against.
fn ingest_bucketed(
    name: &str,
    params: &Params,
    updates: &[Update],
    cfg: &ShardConfig,
) -> Box<dyn DynStreamAlg> {
    let buckets = partition_updates(updates, cfg.shards, cfg.partition);
    let mut instances = Vec::new();
    for (i, bucket) in buckets.iter().enumerate() {
        let mut alg = registry::get(name, params).unwrap();
        let mut rng = TranscriptRng::from_seed(cfg.shard_seed(i));
        for chunk in bucket.chunks(cfg.batch.max(1)) {
            alg.process_batch_dyn(chunk, &mut rng).unwrap();
        }
        instances.push(alg);
    }
    merge_reduce(instances).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn stream_concatenation_equals_generate_for_every_variant(
        m in 1u64..1200,
        seed in 0u64..10_000,
    ) {
        for spec in variants(m, seed) {
            let reference = spec.generate();
            prop_assert_eq!(reference.len() as u64, spec.len(), "{}", spec.label());
            for chunk in [1usize, 7, 4096] {
                let streamed = concat_chunks(&spec, chunk);
                prop_assert_eq!(
                    &streamed,
                    &reference,
                    "{} diverges at chunk {}",
                    spec.label(),
                    chunk
                );
            }
        }
    }

    #[test]
    fn sharded_chunk_queues_match_materialized_buckets(
        m in 64u64..3000,
        seed in 0u64..1000,
        batch in 1usize..300,
        shards in 2usize..6,
    ) {
        let spec = WorkloadSpec::Zipf { n: 1 << 10, m, heavy: 4, seed };
        let updates = spec.generate();
        let params = Params::default().with_n(1 << 10);
        for name in ["misra_gries", "count_min"] {
            for partition in [Partition::Hash, Partition::RoundRobin] {
                // threads: 1 exercises the inline pipeline, 4 the bounded
                // SPSC chunk queues; both must equal the bucket reference.
                for threads in [1usize, 4] {
                    let cfg = ShardConfig {
                        shards,
                        partition,
                        threads,
                        batch,
                        master_seed: 5,
                    };
                    let reference = ingest_bucketed(name, &params, &updates, &cfg);
                    let ctor = |_: usize| registry::get(name, &params);
                    let out = ingest_sharded_source(&ctor, &mut spec.stream(), &cfg).unwrap();
                    prop_assert_eq!(
                        out.merged.query_dyn(),
                        reference.query_dyn(),
                        "{} {:?} threads {} diverged from buckets",
                        name, partition, threads
                    );
                    prop_assert_eq!(
                        out.merged.space_bits_dyn(),
                        reference.space_bits_dyn()
                    );
                    prop_assert_eq!(out.stats.total() as usize, updates.len());
                }
            }
        }
    }
}

#[test]
fn tournament_report_is_invariant_under_chunk_size() {
    use wbstream::engine::tournament::{run_tournament, TournamentConfig};
    let with_chunk = |batch: usize, shards: usize| {
        let mut cfg = TournamentConfig::default().quick();
        cfg.master_seed = 0xC0FFEE;
        cfg.threads = 2;
        cfg.prelude_m = 384;
        cfg.rounds = 96;
        cfg.batch = batch;
        cfg.shards = shards;
        cfg
    };
    for shards in [1usize, 4] {
        let small = run_tournament(&with_chunk(32, shards)).json_lines();
        let large = run_tournament(&with_chunk(1024, shards)).json_lines();
        assert!(!small.is_empty());
        assert_eq!(
            small, large,
            "shards {shards}: chunk size leaked into the report"
        );
    }
}

#[test]
fn streamed_prelude_is_len_bounded_not_materialized() {
    // Smoke-check the O(chunk) claim structurally: a 2^20-update stream
    // pulled through a 256-slot buffer never grows the buffer.
    let spec = WorkloadSpec::Uniform {
        n: 1 << 16,
        m: 1 << 20,
        seed: 3,
    };
    let mut source = spec.stream();
    let mut buf = Vec::with_capacity(256);
    let mut total = 0u64;
    while source.next_chunk(&mut buf) > 0 {
        total += buf.len() as u64;
        assert!(buf.capacity() == 256, "buffer grew: {}", buf.capacity());
    }
    assert_eq!(total, 1 << 20);
}
