//! Zipf draw-identity regression: the precomputed inverse-CDF sampler
//! behind `zipf_stream` must reproduce the **historical per-draw linear CDF
//! walk** byte-for-byte. The walk is reimplemented here, from the public
//! `TranscriptRng` API alone, exactly as `zipf_stream` shipped it before
//! the sampler existed: per draw, one `bernoulli(0.7)` coin, then either a
//! `next_f64() * total` head walk over the `1/(i+1)` weights (with the
//! rounded `u -= w` subtraction chain) or `heavy + below(n - heavy)` for
//! the tail. Any divergence — in items, word counts, or the public
//! transcript — is a white-box model break, not just a perf bug.

use wbstream::core::rng::TranscriptRng;
use wbstream::engine::workload::zipf_stream;
use wbstream::engine::{Update, UpdateSource, WorkloadSpec};

/// The historical generator, frozen: this is the exact draw sequence every
/// committed bench point and pinned game seed was produced with.
fn zipf_stream_reference(n: u64, m: u64, heavy: u64, seed: u64) -> Vec<u64> {
    let mut rng = TranscriptRng::from_seed(seed);
    let weights: Vec<f64> = (0..heavy).map(|i| 1.0 / (i + 1) as f64).collect();
    let total: f64 = weights.iter().sum();
    (0..m)
        .map(|_| {
            if rng.bernoulli(0.7) {
                let mut u = rng.next_f64() * total;
                let mut item = heavy - 1;
                for (i, w) in weights.iter().enumerate() {
                    if u < *w {
                        item = i as u64;
                        break;
                    }
                    u -= w;
                }
                item
            } else {
                heavy + rng.below(n - heavy)
            }
        })
        .collect()
}

#[test]
fn zipf_stream_matches_historical_walk_on_pinned_seeds() {
    // Includes the bench spec's exact cell (n = 2^12 … 2^16, heavy = 64,
    // seed = 97) and degenerate heads.
    for &(n, heavy, seed) in &[
        (1u64 << 16, 64u64, 97u64),
        (1 << 12, 64, 97),
        (1 << 16, 8, 1),
        (1 << 10, 1, 42),
        (1 << 10, 16, 3),
        (257, 8, 11),
    ] {
        let m = 30_000;
        assert_eq!(
            zipf_stream(n, m, heavy, seed),
            zipf_stream_reference(n, m, heavy, seed),
            "n={n} heavy={heavy} seed={seed}"
        );
    }
}

#[test]
fn zipf_stream_matches_walk_at_head_boundaries() {
    // Item boundaries are where the inverse-CDF table could be off by one
    // ulp: hammer a sampler whose head nearly fills the universe (every
    // draw lands on or near a threshold) and one with a pow2-free tail.
    for &(n, heavy) in &[(70u64, 64u64), (65, 64), ((1 << 11) + 1, 2048), (3, 2)] {
        for seed in 0..8u64 {
            let m = 8_000;
            assert_eq!(
                zipf_stream(n, m, heavy, seed),
                zipf_stream_reference(n, m, heavy, seed),
                "n={n} heavy={heavy} seed={seed}"
            );
        }
    }
}

#[test]
fn zipf_chunked_stream_matches_materialized_across_chunk_sizes() {
    let (n, m, heavy, seed) = (1u64 << 14, 20_000u64, 64u64, 97u64);
    let spec = WorkloadSpec::Zipf { n, m, heavy, seed };
    let reference: Vec<Update> = zipf_stream_reference(n, m, heavy, seed)
        .into_iter()
        .map(Update::Insert)
        .collect();
    assert_eq!(spec.generate(), reference);
    for &chunk in &[1usize, 7, 4096] {
        let mut source = spec.stream();
        let mut got: Vec<Update> = Vec::with_capacity(m as usize);
        // `next_chunk` fills up to the buffer's capacity per pull.
        let mut buf = Vec::with_capacity(chunk);
        while source.next_chunk(&mut buf) > 0 {
            got.extend_from_slice(&buf);
        }
        assert_eq!(got, reference, "chunk {chunk}");
    }
}
