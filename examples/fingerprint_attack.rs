//! White-box attacks on string fingerprints (§2.6 of the paper), plus the
//! robust streaming pattern matcher (Algorithm 6).
//!
//! 1. Karp–Rabin falls: the adversary reads `(p, x)`, computes the
//!    multiplicative order of `x`, and forges two distinct strings with the
//!    same fingerprint.
//! 2. The DL-exponent fingerprint shrugs off the equivalent search budget.
//! 3. Algorithm 6 finds adversarially planted pattern occurrences exactly.
//!
//! ```text
//! cargo run --release --example fingerprint_attack
//! ```

use wbstream::core::rng::TranscriptRng;
use wbstream::crypto::crhf::DlExpParams;
use wbstream::strings::attacks::{dlexp_random_collision_search, kr_order_collision};
use wbstream::strings::{naive_find_all, KarpRabin, KarpRabinParams, StreamingPatternMatcher};

fn main() {
    let mut rng = TranscriptRng::from_seed(99);

    // Act 1: Karp–Rabin collapses under white-box observation.
    let kr_params = KarpRabinParams::generate(20, &mut rng);
    println!(
        "Karp–Rabin parameters leak to the adversary: p = {}, x = {}",
        kr_params.p, kr_params.x
    );
    let (u, v) = kr_order_collision(&kr_params);
    let fu = KarpRabin::fingerprint(kr_params, &u);
    let fv = KarpRabin::fingerprint(kr_params, &v);
    println!(
        "forged collision: |U| = |V| = {}, U ≠ V, fingerprints {fu} == {fv} ✗",
        u.len()
    );
    assert_ne!(u, v);
    assert_eq!(fu, fv);

    // Act 2: the DL-exponent fingerprint resists the same budget.
    let dl_params = DlExpParams::generate(40, 2, &mut rng);
    let budget = 1 << 13;
    match dlexp_random_collision_search(dl_params, 64, budget, &mut rng) {
        None => println!(
            "DL-exponent fingerprint (40-bit prime): no collision in {budget} \
             random candidates ✓"
        ),
        Some(_) => panic!("unexpected collision at demo parameters"),
    }

    // Act 3: streaming pattern matching on an adversarial text.
    // The pattern is periodic; the text interleaves true occurrences with
    // near-misses that differ only in the final symbol.
    let pattern: Vec<u64> = b"abcabcabc".iter().map(|&b| (b - b'a') as u64).collect();
    let mut text: Vec<u64> = Vec::new();
    for block in 0..40 {
        if block % 3 == 0 {
            text.extend(&pattern); // true occurrence
        } else {
            let mut near = pattern.clone();
            *near.last_mut().unwrap() = (near.last().unwrap() + 1) % 26; // near miss
            text.extend(&near);
        }
        text.push(25); // separator 'z'
    }
    let params = DlExpParams::generate(40, 26, &mut rng);
    let mut matcher = StreamingPatternMatcher::new(&pattern, params);
    for &c in &text {
        matcher.push(c);
    }
    let expected = naive_find_all(&pattern, &text);
    println!(
        "pattern matching: {} occurrences found, naive reference agrees: {}",
        matcher.matches().len(),
        matcher.matches() == &expected[..]
    );
    assert_eq!(matcher.matches(), &expected[..]);
    println!(
        "pattern period = {}, fingerprints (ψ, φ) = {:?} — all public, still unforgeable ✓",
        matcher.pattern_period(),
        matcher.fingerprints()
    );
}
