//! Hierarchical heavy hitters on synthetic DDoS traffic (§2.2; Algorithms
//! 3–4, Theorem 2.14).
//!
//! A botnet spread across one /24 subnet plus one hot single source are
//! planted in background traffic; the robust HHH sketch finds the subnet
//! *as a prefix* (no single leaf is heavy) and the hot host *as a leaf*.
//!
//! ```text
//! cargo run --release --example ddos_hhh
//! ```

use wbstream::core::rng::TranscriptRng;
use wbstream::core::space::SpaceUsage;
use wbstream::sketch::hhh::{HierarchicalSpaceSaving, Prefix, RadixHierarchy, RobustHHH};

fn ip(a: u64, b: u64, c: u64, d: u64) -> u64 {
    (a << 24) | (b << 16) | (c << 8) | d
}

fn fmt_prefix(p: Prefix) -> String {
    let level = p.level;
    let id = p.id << (8 * level);
    let (a, b, c, d) = (id >> 24 & 255, id >> 16 & 255, id >> 8 & 255, id & 255);
    match level {
        0 => format!("{a}.{b}.{c}.{d}"),
        1 => format!("{a}.{b}.{c}.0/24"),
        2 => format!("{a}.{b}.0.0/16"),
        3 => format!("{a}.0.0.0/8"),
        _ => "0.0.0.0/0 (root)".to_string(),
    }
}

fn main() {
    let hierarchy = RadixHierarchy::ipv4();
    let m = 200_000u64;
    let mut rng = TranscriptRng::from_seed(2024);

    // Robust (Algorithm 4) and deterministic (TMS12) side by side.
    let mut robust = RobustHHH::new(hierarchy, 0.02, 0.10);
    let mut tms12 = HierarchicalSpaceSaving::new(hierarchy, 0.02, 0.10);

    println!("streaming {m} packets: botnet=10.1.7.0/24 (25%), hot host=203.0.113.5 (15%)");
    for t in 0..m {
        let src = match t % 20 {
            0..=4 => ip(10, 1, 7, rng.below(256)), // botnet subnet, 25%
            5..=7 => ip(203, 0, 113, 5),           // hot host, 15%
            _ => rng.below(1 << 32),               // background noise
        };
        robust.insert(src, &mut rng);
        tms12.insert(src);
    }

    println!("\nrobust HHH report (threshold γ = 10%):");
    for (prefix, est) in robust.solve() {
        println!(
            "  level {}  {:<18}  ≈{:>9.0} packets ({:.1}%)",
            prefix.level,
            fmt_prefix(prefix),
            est,
            100.0 * est / m as f64
        );
    }

    println!("\ndeterministic TMS12 report:");
    for (prefix, est) in tms12.solve(0.10) {
        println!(
            "  level {}  {:<18}  ≈{:>9.0} packets",
            prefix.level,
            fmt_prefix(prefix),
            est
        );
    }

    println!(
        "\nspace: robust {} bits vs deterministic {} bits \
         (robust counters count samples; TMS12 counters carry log m)",
        robust.space_bits(),
        tms12.space_bits()
    );

    // The headline checks.
    let report = robust.solve();
    let found_subnet = report
        .iter()
        .any(|&(p, _)| p.level == 1 && p.id == ip(10, 1, 7, 0) >> 8);
    let found_host = report
        .iter()
        .any(|&(p, _)| p.level == 0 && p.id == ip(203, 0, 113, 5));
    assert!(found_subnet, "botnet /24 must be detected as a prefix HHH");
    assert!(found_host, "hot host must be detected as a leaf HHH");
    println!("\nbotnet subnet and hot host both detected ✓");
}
