//! Theorem 1.11, live: deterministic approximate counting with a timer
//! needs Ω(log n) bits, while randomized Morris counters do it in
//! O(log log n) — the separation between deterministic multiplayer
//! communication and white-box streaming space.
//!
//! ```text
//! cargo run --release --example counting_lower_bound
//! ```

use wbstream::core::rng::TranscriptRng;
use wbstream::core::space::SpaceUsage;
use wbstream::lowerbounds::{
    reduction_experiment, verify_counter, width_lower_bound, BucketCounter, ErrorBudget,
    ExactCounter, SaturatingCounter,
};
use wbstream::sketch::MedianMorris;

fn main() {
    let eps = 0.5;

    // The certified width bound of Lemmas 3.5–3.10.
    println!("certified minimum state count (h+1) for (1+{eps})-approx counting:");
    for n in [1u64 << 8, 1 << 12, 1 << 16, 1 << 20] {
        let (_, bound) = width_lower_bound(n, ErrorBudget::Multiplicative(eps));
        println!(
            "  n = {n:>8}: ≥ {bound:>4} states (≥ {} bits)",
            (bound as f64).log2().ceil()
        );
    }

    // Candidate deterministic counters vs the exhaustive verifier.
    println!("\nverifier verdicts at n = 96:");
    match verify_counter(&ExactCounter, 96, eps) {
        Ok(widths) => println!(
            "  exact counter: correct, width grows to {} states",
            widths.iter().max().unwrap()
        ),
        Err(_) => unreachable!(),
    }
    match verify_counter(&SaturatingCounter { width: 16 }, 96, eps) {
        Err(cex) => println!(
            "  saturating(16): FAILS — stream with {} ones gets estimate {:.0}",
            cex.true_count, cex.estimate
        ),
        Ok(_) => unreachable!(),
    }
    match verify_counter(
        &BucketCounter {
            delta: 0.5,
            width: 16,
        },
        96,
        eps,
    ) {
        Err(cex) => println!(
            "  deterministic Morris (16 buckets): FAILS — count {} estimated {:.0}",
            cex.true_count, cex.estimate
        ),
        Ok(_) => unreachable!(),
    }

    // Morris counters do it with loglog bits — randomness is essential.
    let mut rng = TranscriptRng::from_seed(5150);
    let mut morris = MedianMorris::new(0.2, 9);
    let n = 1u64 << 20;
    for _ in 0..n {
        morris.increment(&mut rng);
    }
    println!(
        "\nrandomized Morris at n = 2^20: estimate {:.0} (true {n}), {} bits of state",
        morris.estimate(),
        morris.space_bits()
    );

    // Theorem 1.8's reduction: the derandomization crossover.
    println!("\nTheorem 1.8 derandomization (DetGapEQ, n = 8, 64-seed pool):");
    for k in [2usize, 5, 7, 9] {
        let r = reduction_experiment(8, k, 2, 64);
        println!(
            "  sketch width k = {k}: derandomizable for {:>5.1}% of inputs \
             (deterministic bound: {} bits)",
            100.0 * r.derandomizable_fraction,
            r.deterministic_bound
        );
    }
    println!(
        "\nbelow the deterministic bound no seed works; above it the robust \
         sketch derandomizes — white-box space ≥ deterministic communication ✓"
    );
}
