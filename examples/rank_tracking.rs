//! Streaming rank decision over turnstile matrix updates (Theorem 1.6),
//! with the vertex-neighborhood identification of Theorem 1.3 as a second
//! linear-algebra-flavoured graph task.
//!
//! ```text
//! cargo run --release --example rank_tracking
//! ```

use wbstream::core::rng::TranscriptRng;
use wbstream::core::space::SpaceUsage;
use wbstream::graph::{HashedNeighborhoods, OrEqInstance};
use wbstream::linalg::{EntryUpdate, ExactRankDecision, RankDecisionSketch, RowBasisTracker};

fn main() {
    let n = 64usize;
    let k = 6usize;

    // Stream a rank-4 matrix (sum of 4 outer products) entry by entry.
    let mut rng = TranscriptRng::from_seed(31337);
    let mut sketch = RankDecisionSketch::new(n, k, b"rank-demo");
    let mut exact = ExactRankDecision::new(n, k);
    let mut basis = RowBasisTracker::new(n, k + 2, b"basis-demo");
    let mut a = vec![vec![0i64; n]; n];
    for _ in 0..4 {
        let u: Vec<i64> = (0..n).map(|_| rng.below(7) as i64 - 3).collect();
        let v: Vec<i64> = (0..n).map(|_| rng.below(7) as i64 - 3).collect();
        for i in 0..n {
            for j in 0..n {
                a[i][j] += u[i] * v[j];
            }
        }
    }
    let mut updates = 0u64;
    for (i, row) in a.iter().enumerate() {
        for (j, &v) in row.iter().enumerate() {
            if v != 0 {
                let u = EntryUpdate {
                    row: i,
                    col: j,
                    delta: v,
                };
                sketch.update(u);
                exact.update(u);
                basis.update(u);
                updates += 1;
            }
        }
    }
    println!("streamed {updates} turnstile entry updates of a {n}×{n} rank-4 matrix");
    println!(
        "rank ≥ {k}?  sketch: {}   exact: {}   (true rank = {})",
        sketch.rank_at_least_k(),
        exact.rank_at_least_k(),
        exact.rank()
    );
    assert_eq!(sketch.rank_at_least_k(), exact.rank_at_least_k());

    // Now raise the rank past k with two more outer products, streamed in.
    for _ in 0..3 {
        let r = rng.below(n as u64) as usize;
        let c = rng.below(n as u64) as usize;
        // A random entry bump almost surely raises the rank by 1.
        let u = EntryUpdate {
            row: r,
            col: c,
            delta: 1,
        };
        sketch.update(u);
        exact.update(u);
        basis.update(u);
    }
    println!(
        "after 3 random bumps: sketch says rank ≥ {k}: {}, exact rank = {}",
        sketch.rank_at_least_k(),
        exact.rank()
    );
    assert_eq!(sketch.rank_at_least_k(), exact.rank() >= k);

    println!(
        "basis tracker: {} independent rows found, e.g. {:?}",
        basis.rank_estimate(),
        &basis.basis_rows()[..basis.rank_estimate().min(8)]
    );
    println!(
        "space: sketch {} bits vs exact {} bits (Õ(nk²) vs Θ(n²·log q))\n",
        sketch.space_bits(),
        exact.space_bits()
    );

    // Bonus: neighborhood identification solving an OR-Equality instance
    // (the Theorem 1.3 / 1.4 pair).
    let mut rng2 = TranscriptRng::from_seed(424242);
    let inst = OrEqInstance::random(48, 12, &[3, 9], &mut rng2);
    let mut hashed = HashedNeighborhoods::new(inst.graph_vertices(), &mut rng2);
    for arrival in inst.to_vertex_stream() {
        hashed.insert(&arrival);
    }
    let decoded = inst.decode(&hashed.identical_groups());
    println!(
        "OR-Equality via hashed neighborhoods: decoded equal pairs at indices {:?} \
         (truth {:?})",
        decoded
            .iter()
            .enumerate()
            .filter(|&(_, &b)| b)
            .map(|(i, _)| i)
            .collect::<Vec<_>>(),
        inst.truth()
            .iter()
            .enumerate()
            .filter(|&(_, &b)| b)
            .map(|(i, _)| i)
            .collect::<Vec<_>>()
    );
    assert_eq!(decoded, inst.truth());
    println!(
        "hashed-neighborhood space: {} bits (O(n log n)) ✓",
        hashed.space_bits()
    );
}
