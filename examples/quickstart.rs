//! Quickstart: drive the paper's robust heavy-hitters algorithm
//! (Theorem 1.1 / Algorithm 2) through the engine's fluent game builder,
//! then rerun it by registry name over the erased interface.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use wbstream::core::game::FnAdversary;
use wbstream::core::referee::HeavyHitterReferee;
use wbstream::core::rng::RandTranscript;
use wbstream::core::space::SpaceUsage;
use wbstream::core::stream::InsertOnly;
use wbstream::engine::erased::run_script_erased;
use wbstream::engine::registry::{self, Params};
use wbstream::engine::{Game, RecordingObserver, RefereeSpec, Update};
use wbstream::sketch::{MisraGries, RobustL1HeavyHitters};

fn main() {
    let n = 1u64 << 16; // universe size
    let m = 1u64 << 17; // stream length
    let eps = 0.125;

    // A white-box adversary: it reads the algorithm's internal Misra–Gries
    // table every round and sends items the summary is *not* monitoring,
    // interleaved with one genuinely heavy item.
    let mut evader = 1000u64;
    let adversary = FnAdversary::new(
        move |t: u64,
              alg: &RobustL1HeavyHitters,
              transcript: &RandTranscript,
              _last: Option<&Vec<(u64, f64)>>| {
            if t > m {
                return None;
            }
            if t == 1 {
                println!(
                    "adversary sees: seed={}, draws so far={}",
                    transcript.seed(),
                    transcript.draws()
                );
            }
            if t.is_multiple_of(3) {
                Some(InsertOnly(7)) // the heavy item (1/3 of the stream)
            } else {
                let tracked: Vec<u64> = alg
                    .answering()
                    .inner()
                    .entries()
                    .iter()
                    .map(|&(i, _)| i)
                    .collect();
                while tracked.contains(&evader) {
                    evader = 1000 + (evader + 1) % (n - 1000);
                }
                let item = evader;
                evader = 1000 + (evader + 1) % (n - 1000);
                Some(InsertOnly(item))
            }
        },
    );

    // The fluent builder: algorithm under test, adversary, a referee
    // holding exact ground truth, and an observer recording the timeline.
    let mut timeline = RecordingObserver::new();
    let (report, alg) = Game::new(RobustL1HeavyHitters::new(n, eps))
        .adversary(adversary)
        .referee(HeavyHitterReferee::new(eps, eps).with_grace(64))
        .max_rounds(m)
        .seed(0xC0FFEE)
        .observer(&mut timeline)
        .play();

    println!("rounds played:      {}", report.result.rounds);
    println!("survived:           {}", report.survived());
    println!("peak space:         {} bits", report.result.peak_space_bits);
    println!(
        "final space:        {} bits",
        report.result.final_space_bits
    );
    println!("referee checks:     {}", report.checks);
    println!("epoch reached:      {}", alg.epoch());
    println!(
        "Morris t̂:           {:.0} (true {})",
        alg.t_hat(),
        report.result.rounds
    );

    println!("\nreported heavy hitters (item, estimate):");
    for (item, est) in alg.heavy_hitters() {
        if est > 0.05 * m as f64 {
            println!(
                "  item {item:>6}: {est:>10.0}  (truth for 7: {:.0})",
                m as f64 / 3.0
            );
        }
    }

    // Compare with the deterministic Misra–Gries baseline's space.
    let mut mg = MisraGries::new(eps, n);
    for t in 0..m {
        mg.insert(if t % 3 == 0 { 7 } else { 1000 + t % 1000 });
    }
    println!(
        "\nspace: robust {} bits vs deterministic Misra–Gries {} bits \
         (the gap grows with log m — see experiment E1)",
        alg.space_bits(),
        mg.space_bits()
    );

    // The same game family, selected by *name* through the registry and
    // driven over the erased interface with batched ingestion: this is how
    // the experiment runner and future servers pick algorithms at runtime.
    let mut named = registry::get("robust_hh", &Params::default().with_n(n).with_eps(eps))
        .expect("registered algorithm");
    let script: Vec<Update> = (0..m)
        .map(|t| Update::Insert(if t % 3 == 0 { 7 } else { 1000 + t % 1000 }))
        .collect();
    let mut referee = RefereeSpec::HeavyHitters {
        eps,
        tol: eps,
        phi: None,
        grace: 64,
    }
    .build();
    let erased_report =
        run_script_erased(named.as_mut(), &script, referee.as_mut(), 1024, 0xC0FFEE)
            .expect("insertion stream fits the model");
    println!(
        "\nregistry run: {} over {} updates in {} batches — survived: {}",
        named.name_dyn(),
        erased_report.result.rounds,
        erased_report.checks,
        erased_report.survived()
    );

    assert!(report.survived(), "Theorem 1.1 held up");
    assert!(erased_report.survived(), "Theorem 1.1 held up (erased run)");
}
