//! Quickstart: run the white-box adversarial game with the paper's robust
//! heavy-hitters algorithm (Theorem 1.1 / Algorithm 2).
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use wbstream::core::game::{run_game, FnAdversary};
use wbstream::core::referee::HeavyHitterReferee;
use wbstream::core::rng::RandTranscript;
use wbstream::core::space::SpaceUsage;
use wbstream::core::stream::InsertOnly;
use wbstream::sketch::{MisraGries, RobustL1HeavyHitters};

fn main() {
    let n = 1u64 << 16; // universe size
    let m = 1u64 << 17; // stream length
    let eps = 0.125;

    // The streaming algorithm under test: Algorithm 2.
    let mut alg = RobustL1HeavyHitters::new(n, eps);

    // A white-box adversary: it reads the algorithm's internal Misra–Gries
    // table every round and sends items the summary is *not* monitoring,
    // interleaved with one genuinely heavy item.
    let mut evader = 1000u64;
    let mut adversary = FnAdversary::new(
        move |t: u64,
              alg: &RobustL1HeavyHitters,
              transcript: &RandTranscript,
              _last: Option<&Vec<(u64, f64)>>| {
            if t > m {
                return None;
            }
            if t == 1 {
                println!(
                    "adversary sees: seed={}, draws so far={}",
                    transcript.seed(),
                    transcript.draws()
                );
            }
            if t.is_multiple_of(3) {
                Some(InsertOnly(7)) // the heavy item (1/3 of the stream)
            } else {
                let tracked: Vec<u64> = alg
                    .answering()
                    .inner()
                    .entries()
                    .iter()
                    .map(|&(i, _)| i)
                    .collect();
                while tracked.contains(&evader) {
                    evader = 1000 + (evader + 1) % (n - 1000);
                }
                let item = evader;
                evader = 1000 + (evader + 1) % (n - 1000);
                Some(InsertOnly(item))
            }
        },
    );

    // The referee holds exact ground truth and checks every answer.
    let mut referee = HeavyHitterReferee::new(eps, eps).with_grace(64);

    let result = run_game(&mut alg, &mut adversary, &mut referee, m, 0xC0FFEE);

    println!("rounds played:      {}", result.rounds);
    println!("survived:           {}", result.survived());
    println!("peak space:         {} bits", result.peak_space_bits);
    println!("final space:        {} bits", result.final_space_bits);
    println!("epoch reached:      {}", alg.epoch());
    println!(
        "Morris t̂:           {:.0} (true {})",
        alg.t_hat(),
        result.rounds
    );

    println!("\nreported heavy hitters (item, estimate):");
    for (item, est) in alg.heavy_hitters() {
        if est > 0.05 * m as f64 {
            println!(
                "  item {item:>6}: {est:>10.0}  (truth for 7: {:.0})",
                m as f64 / 3.0
            );
        }
    }

    // Compare with the deterministic Misra–Gries baseline's space.
    let mut mg = MisraGries::new(eps, n);
    for t in 0..m {
        mg.insert(if t % 3 == 0 { 7 } else { 1000 + t % 1000 });
    }
    println!(
        "\nspace: robust {} bits vs deterministic Misra–Gries {} bits \
         (the gap grows with log m — see experiment E1)",
        alg.space_bits(),
        mg.space_bits()
    );

    assert!(result.survived(), "Theorem 1.1 held up");
}
