//! Distinct elements (L0) on a turnstile stream with the SIS sketch
//! (Algorithm 5 / Theorem 1.5) — including the attack story.
//!
//! Three acts:
//! 1. the SIS estimator sandwiches L0 under heavy adaptive deletions;
//! 2. a naive small-modulus sketch with the same structure is broken in
//!    polynomial time by Gaussian elimination (the white-box adversary);
//! 3. the same adversary budget fails against the SIS instance, and the
//!    unbounded mod-q kernel violates the `‖f‖∞ ≤ poly(n)` promise.
//!
//! ```text
//! cargo run --release --example distinct_turnstile
//! ```

use wbstream::core::rng::TranscriptRng;
use wbstream::core::space::SpaceUsage;
use wbstream::core::stream::FrequencyVector;
use wbstream::sketch::l0::{
    attack_sis_estimator, break_naive_sketch, MatrixMode, NaiveModSketchL0, SisAttackOutcome,
    SisL0Estimator,
};

fn main() {
    let n = 1u64 << 12;
    let mut rng = TranscriptRng::from_seed(77);

    // Act 1: sandwich under adaptive turnstile churn.
    let mut est = SisL0Estimator::new(n, 0.5, 0.25, MatrixMode::RandomOracle, &mut rng);
    let mut truth = FrequencyVector::new();
    for round in 0..8u64 {
        for i in 0..256u64 {
            let item = (round * 97 + i * 13) % n;
            est.update(item, 2);
            truth.update(item, 2);
        }
        for i in 0..128u64 {
            let item = (round * 97 + i * 13) % n;
            est.update(item, -2);
            truth.update(item, -2);
        }
        let (lo, hi) = est.answer_range();
        let l0 = truth.l0();
        println!(
            "round {round}: answer ∈ [{lo}, {hi}], true L0 = {l0}  {}",
            if lo <= l0 && l0 <= hi { "✓" } else { "✗" }
        );
        assert!(lo <= l0 && l0 <= hi, "sandwich violated");
    }
    println!(
        "estimator space: {} bits (random-oracle mode; approximation factor n^ε = {})\n",
        est.space_bits(),
        est.approximation_factor()
    );

    // Act 2: the naive small-q sketch falls to Gaussian elimination.
    let mut naive = NaiveModSketchL0::new(n, 64, 8, 2, &mut rng);
    let attack = break_naive_sketch(&naive).expect("wide chunk has a GF(2) kernel");
    let mut naive_truth = FrequencyVector::new();
    for u in &attack {
        naive.update(u.item, u.delta);
        naive_truth.update(u.item, u.delta);
    }
    println!(
        "naive q=2 sketch after poly-time attack: answer = {} but true L0 = {} \
         (sandwich broken with {} legal updates) ✗",
        naive.answer(),
        naive_truth.l0(),
        attack.len()
    );
    assert_eq!(naive.answer(), 0);
    assert!(naive_truth.l0() > 0);

    // Act 3: the same budget against SIS.
    let outcome = attack_sis_estimator(&est, 50_000, &mut rng);
    match outcome {
        SisAttackOutcome::Resisted {
            budget_spent,
            unbounded_kernel_max_entry,
        } => {
            let beta = est.matrix().params().beta_inf;
            println!(
                "\nSIS sketch resisted {budget_spent} bounded-attack candidates; \
                 the unbounded mod-q kernel exists but its max entry {} far exceeds \
                 the promise bound β = {beta} — not a legal stream ✓",
                unbounded_kernel_max_entry.unwrap_or(0)
            );
        }
        SisAttackOutcome::Broken(_) => {
            panic!("demo-scale SIS should not fall to a 50k-candidate search")
        }
    }
}
