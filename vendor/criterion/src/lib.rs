//! Offline, API-compatible subset of the [criterion](https://docs.rs/criterion)
//! benchmark harness.
//!
//! The build environment has no crates.io access, so this crate vendors the
//! slice of criterion's API that the workspace benches use: [`Criterion`],
//! [`BenchmarkGroup`], [`Bencher::iter`], `criterion_group!` and
//! `criterion_main!`. It is a real measuring harness — each benchmark is
//! warmed up, then timed over a fixed number of samples and reported as
//! min/mean/max nanoseconds per iteration — just without criterion's
//! statistical machinery (outlier analysis, HTML reports, comparisons).
//!
//! Swap this for the registry crate by pointing the workspace dependency at
//! `criterion = "0.5"` once network access is available; no bench source
//! changes are needed.

use std::hint::black_box as std_black_box;
use std::time::Instant;

/// Default number of timed samples per benchmark.
const DEFAULT_SAMPLE_SIZE: usize = 10;
/// Warm-up iterations executed before sampling begins.
const WARMUP_ITERS: u64 = 3;

/// Re-export so `criterion::black_box` callers keep working.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Timing loop handed to the closure of [`Criterion::bench_function`].
pub struct Bencher {
    /// Iterations executed per sample.
    iters_per_sample: u64,
    /// Nanoseconds per iteration, one entry per sample.
    samples: Vec<f64>,
    sample_size: usize,
}

impl Bencher {
    fn new(sample_size: usize) -> Self {
        Bencher {
            iters_per_sample: 1,
            samples: Vec::with_capacity(sample_size),
            sample_size,
        }
    }

    /// Time `routine`, recording `sample_size` samples after a short warm-up.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..WARMUP_ITERS {
            std_black_box(routine());
        }
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                std_black_box(routine());
            }
            let nanos = start.elapsed().as_nanos() as f64;
            self.samples.push(nanos / self.iters_per_sample as f64);
        }
    }

    fn report(&self, name: &str) {
        if self.samples.is_empty() {
            println!("{name:<40} (no samples)");
            return;
        }
        let min = self.samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = self.samples.iter().cloned().fold(0.0f64, f64::max);
        let mean = self.samples.iter().sum::<f64>() / self.samples.len() as f64;
        println!(
            "{name:<40} [{:>12} {:>12} {:>12}] ns/iter",
            format_ns(min),
            format_ns(mean),
            format_ns(max)
        );
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3}s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3}us", ns / 1e3)
    } else {
        format!("{ns:.0}ns")
    }
}

/// Top-level benchmark driver; one per `criterion_group!`.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Run a single named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(DEFAULT_SAMPLE_SIZE);
        f(&mut b);
        b.report(name);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, group_name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: group_name.to_string(),
            sample_size: DEFAULT_SAMPLE_SIZE,
        }
    }
}

/// A named group sharing configuration (sample size) across benchmarks.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples for subsequent benchmarks.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        // Real criterion rejects n < 10; this subset just clamps to 1.
        self.sample_size = n.max(1);
        self
    }

    /// Run a benchmark inside this group.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        b.report(&format!("{}/{}", self.name, name));
        self
    }

    /// Finish the group. (Reports are printed eagerly; this is a no-op kept
    /// for API compatibility.)
    pub fn finish(self) {}
}

/// Define a benchmark group function runnable by [`criterion_main!`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Define `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes harness flags (e.g. --bench); ignore them.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_requested_samples() {
        let mut b = Bencher::new(5);
        b.iter(|| 1 + 1);
        assert_eq!(b.samples.len(), 5);
        assert!(b.samples.iter().all(|&s| s >= 0.0));
    }

    #[test]
    fn group_runs_benchmarks() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        let mut ran = false;
        group.sample_size(2).bench_function("f", |b| {
            ran = true;
            b.iter(|| 0u64)
        });
        group.finish();
        assert!(ran);
    }
}
