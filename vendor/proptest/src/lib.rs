//! Offline, API-compatible subset of [proptest](https://docs.rs/proptest).
//!
//! The build environment has no crates.io access, so this crate vendors the
//! slice of proptest that the workspace property suites use:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!`,
//! * integer range strategies (`0u64..32`, `-3i64..=3`, ...),
//! * tuple strategies up to arity 4,
//! * [`any::<T>()`] for the primitive integers and `bool`,
//! * [`collection::vec`] with a fixed size or a size range.
//!
//! Generation is deterministic (seeded per test from the test name via
//! SplitMix64) and there is **no shrinking**: a failing case panics with the
//! case index so it can be replayed. Swap this for the registry crate by
//! pointing the workspace dependency at `proptest = "1"` once network access
//! is available; no test source changes are needed.

use std::ops::{Range, RangeInclusive};

pub mod test_runner {
    /// Per-suite configuration. Only `cases` is honoured by this subset.
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of random cases each property is checked against.
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }
}

pub use test_runner::Config as ProptestConfig;

/// Deterministic generator state (SplitMix64), seeded per test.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from a test name so every property has a stable stream.
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng { state: h | 1 }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, span)`; `span` must be nonzero.
    fn below(&mut self, span: u128) -> u128 {
        debug_assert!(span > 0);
        let wide = (self.next_u64() as u128) << 64 | self.next_u64() as u128;
        wide % span
    }
}

/// A value generator. This subset generates directly (no value trees, no
/// shrinking).
pub trait Strategy {
    type Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

/// Types with a canonical "any value" strategy, via [`any`].
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy produced by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

/// The full-range strategy for `T`: `any::<u8>()`, `any::<u64>()`, ...
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy that always yields a clone of one value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_strategies {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_int_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Size argument of [`vec`]: a fixed length or a length range.
    pub struct SizeRange {
        lo: usize,
        /// Exclusive upper bound.
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `proptest::collection::vec(strategy, len)` — `len` may be a `usize`,
    /// `a..b`, or `a..=b`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u128;
            let len = self.size.lo + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, Just,
        ProptestConfig, Strategy,
    };
}

/// Declare property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that checks the body against `config.cases` generated
/// inputs. Failures panic with the case index (no shrinking in this subset).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($config) $($rest)*);
    };
    (@impl ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::TestRng::from_name(stringify!($name));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)+
                let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(
                    || $body,
                ));
                if let Err(payload) = result {
                    eprintln!(
                        "proptest: property {} failed at case {}/{}",
                        stringify!($name),
                        case,
                        config.cases
                    );
                    ::std::panic::resume_unwind(payload);
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@impl (<$crate::ProptestConfig as ::std::default::Default>::default()) $($rest)*);
    };
}

/// `assert!` inside a property; panics (and reports the case) on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// `assert_eq!` inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

/// `assert_ne!` inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_ne!($left, $right, $($fmt)+) };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(a in 3u64..10, b in -5i64..=5, c in 0usize..1) {
            prop_assert!((3..10).contains(&a));
            prop_assert!((-5..=5).contains(&b));
            prop_assert_eq!(c, 0);
        }

        #[test]
        fn vec_sizes_respect_bounds(
            v in crate::collection::vec(0u8..4, 2..6),
            w in crate::collection::vec(any::<u8>(), 3),
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert_eq!(w.len(), 3);
            prop_assert!(v.iter().all(|&x| x < 4));
        }

        #[test]
        fn tuples_compose(t in (0u64..4, -1i64..=1, 0usize..2)) {
            prop_assert!(t.0 < 4);
            prop_assert!((-1..=1).contains(&t.1));
            prop_assert!(t.2 < 2);
        }
    }

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = crate::TestRng::from_name("x");
        let mut b = crate::TestRng::from_name("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
